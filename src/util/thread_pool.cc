#include "util/thread_pool.h"

#include <cstdlib>

namespace hydra::util {

namespace {
std::atomic<void (*)(std::size_t)> g_worker_start_hook{nullptr};
std::atomic<void (*)(const char*)> g_job_failure_hook{nullptr};
std::atomic<std::uint64_t> g_contained_exceptions{0};

void report_contained(const char* what) {
  g_contained_exceptions.fetch_add(1, std::memory_order_relaxed);
  if (auto* hook = g_job_failure_hook.load(std::memory_order_acquire)) {
    hook(what);
  }
}
}  // namespace

void ThreadPool::set_worker_start_hook(void (*hook)(std::size_t)) {
  g_worker_start_hook.store(hook, std::memory_order_release);
}

void ThreadPool::set_job_failure_hook(void (*hook)(const char*)) {
  g_job_failure_hook.store(hook, std::memory_order_release);
}

std::uint64_t ThreadPool::contained_exceptions() {
  return g_contained_exceptions.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Pair the flag with the sleep mutex so no worker can re-check the
    // predicate and block between our store and the notify.
    const LockGuard lock(sleep_mu_);
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    // Bind the queue once so the lock expression and the guarded access
    // name the same object — the analysis matches capabilities by
    // expression, not by value.
    Queue& target = *queues_[q];
    const LockGuard lock(target.mu);
    target.jobs.push_back(std::move(job));
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& job) {
  // Own deque first (front = submission order)...
  {
    Queue& own = *queues_[self];
    const LockGuard lock(own.mu);
    if (!own.jobs.empty()) {
      job = std::move(own.jobs.front());
      own.jobs.pop_front();
      return true;
    }
  }
  // ...then steal from the back of a sibling's.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = *queues_[(self + k) % queues_.size()];
    const LockGuard lock(victim.mu);
    if (!victim.jobs.empty()) {
      job = std::move(victim.jobs.back());
      victim.jobs.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  if (auto* hook = g_worker_start_hook.load(std::memory_order_acquire)) {
    hook(self);
  }
  while (true) {
    std::function<void()> job;
    if (try_pop(self, job)) {
      pending_.fetch_sub(1, std::memory_order_acquire);
      // Contain anything that escapes a raw job: letting it propagate
      // would std::terminate the process and take every sibling job
      // down with it. Supervised work (RunCache, async) captures its
      // own exceptions; this is the backstop for everything else.
      try {
        job();
      } catch (const std::exception& e) {
        report_contained(e.what());
      } catch (...) {
        report_contained("unknown exception");
      }
      continue;
    }
    LockGuard lock(sleep_mu_);
    // The predicate reads only atomics, so it is safe under the lambda-
    // body analysis (lambdas are checked as separate functions).
    wake_.wait(lock, [this] {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  struct BarrierState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mu;
    CondVar all_done;
    std::exception_ptr first_error HYDRA_GUARDED_BY(mu);
  };
  const auto state = std::make_shared<BarrierState>();
  const std::size_t total = n;
  const auto drain = [state, total, &fn] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        fn(i);
      } catch (...) {
        const LockGuard lock(state->mu);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total) {
        // Pair with the mutex so the waiter cannot re-check the
        // predicate and block between our increment and the notify.
        { const LockGuard lock(state->mu); }
        state->all_done.notify_all();
      }
    }
  };
  // Helpers reference fn, which outlives them: every helper job has
  // finished claiming before the barrier below releases the caller, and
  // a job that loses the race entirely (next already >= total) touches
  // only `state`, which it co-owns.
  const std::size_t helpers = std::min(total - 1, size());
  for (std::size_t h = 0; h < helpers; ++h) submit(drain);
  drain();  // the caller claims too — the no-deadlock guarantee
  {
    LockGuard lock(state->mu);
    state->all_done.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == total;
    });
    if (state->first_error) std::rethrow_exception(state->first_error);
  }
}

std::size_t ThreadPool::configured_width() {
  if (const char* env = std::getenv("HYDRA_THREADS");
      env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_width());
  return pool;
}

}  // namespace hydra::util
