#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace hydra::util {

void AsciiTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void AsciiTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void AsciiTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << cell;
      if (i + 1 < widths.size()) {
        out << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace hydra::util
