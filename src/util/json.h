// Minimal JSON emission (objects, arrays, scalars) for tool output.
//
// Write-only by design: experiment results flow out to dashboards and
// scripts; nothing in the simulator consumes JSON.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hydra::util {

/// Streaming JSON writer with automatic comma/indent management.
/// Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("name").value("crafty");
///   w.key("slowdown").value(1.05);
///   w.key("list").begin_array();
///   w.value(1.0); w.value(2.0);
///   w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(bool v);

  /// JSON string escaping (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  void prefix();   ///< commas/newline/indent before a new element
  void newline();

  std::ostream* out_;
  int indent_;
  struct Level {
    bool is_object = false;
    bool first = true;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

}  // namespace hydra::util
