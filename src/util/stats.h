// Streaming statistics and simple inference helpers.
//
// The paper reports mean slowdowns across nine benchmarks with 99 %
// confidence statements; RunningStats + paired_t_statistic provide exactly
// the machinery needed to reproduce those claims.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hydra::util {

/// Numerically stable (Welford) accumulator for mean/variance/min/max.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  RunningStats();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_;
  double max_;
};

/// Paired t statistic for the hypothesis mean(a - b) == 0.
/// Requires a.size() == b.size() >= 2. Returns 0 when the paired
/// differences have zero variance and zero mean.
double paired_t_statistic(std::span<const double> a, std::span<const double> b);

/// Two-sided critical value of Student's t for the given degrees of
/// freedom at 99 % confidence (alpha = 0.01). Exact table values for
/// df 1..30, asymptotic value beyond.
double t_critical_99(std::size_t degrees_of_freedom);

/// Half-width of the 99 % confidence interval of the mean of `xs`.
double confidence_half_width_99(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for duty-cycle and temperature distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Count in bin i.
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Fraction of samples with value >= x (by whole bins).
  double fraction_at_or_above(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hydra::util
