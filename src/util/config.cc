#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

namespace hydra::util {
namespace {

/// Edit distance for "did you mean" hints (small strings, O(n*m)).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (!line.empty()) {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("config line " + std::to_string(line_no) +
                                    ": expected key=value, got '" +
                                    std::string(line) + "'");
      }
      const std::string_view key = trim(line.substr(0, eq));
      const std::string_view value = trim(line.substr(eq + 1));
      if (key.empty()) {
        throw std::invalid_argument("config line " + std::to_string(line_no) +
                                    ": empty key");
      }
      cfg.set(std::string(key), std::string(value));
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return cfg;
}

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    // GNU-style leading dashes are cosmetic: --trace=out.json and
    // trace=out.json set the same key.
    std::string_view a = arg;
    while (!a.empty() && a.front() == '-') a.remove_prefix(1);
    const std::size_t eq = a.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("expected key=value argument, got '" + arg +
                                  "'");
    }
    cfg.set(std::string(trim(a.substr(0, eq))),
            std::string(trim(a.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::find(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key,
                               std::string fallback) const {
  const auto v = find(key);
  return v ? *v : std::move(fallback);
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + std::string(key) +
                                "': cannot parse '" + *v + "' as double");
  }
}

long long Config::get_int(std::string_view key, long long fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  long long parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), parsed);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::invalid_argument("config key '" + std::string(key) +
                                "': cannot parse '" + *v + "' as integer");
  }
  return parsed;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("config key '" + std::string(key) +
                              "': cannot parse '" + *v + "' as bool");
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

void Config::reject_unknown(const std::vector<std::string_view>& allowed,
                            std::source_location where) const {
  for (const auto& [key, value] : values_) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string msg = std::string(where.file_name()) + ":" +
                      std::to_string(where.line()) +
                      ": unknown config key '" + key + "'";
    std::string_view best;
    std::size_t best_dist = key.size();
    for (const std::string_view cand : allowed) {
      const std::size_t d = edit_distance(key, cand);
      if (d < best_dist) {
        best_dist = d;
        best = cand;
      }
    }
    if (!best.empty() && best_dist <= 3) {
      msg += " (did you mean '" + std::string(best) + "'?)";
    }
    throw std::invalid_argument(msg);
  }
}

}  // namespace hydra::util
