// Clang Thread Safety Analysis attribute macros (DESIGN.md §16).
//
// These wrap the `capability`-family attributes so the lock protocol of
// every concurrent type in the tree is stated in the type system and
// checked at compile time: a field tagged HYDRA_GUARDED_BY(mu) cannot
// be touched without holding mu, a method tagged HYDRA_REQUIRES(mu)
// cannot be called without it, and the whole tree builds under
// `-Wthread-safety -Werror=thread-safety-analysis` on clang (the CI
// clang legs). The macros expand to nothing on compilers without the
// attributes (gcc), so they are zero-cost in every sense: no codegen,
// no ABI, no overhead — purely a compile-time contract.
//
// Apply them through the annotated primitives in util/sync.h
// (util::Mutex, util::SharedMutex, util::LockGuard, util::CondVar);
// raw std::mutex outside src/util is rejected by the `no-raw-mutex`
// hydra-lint rule.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HYDRA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HYDRA_THREAD_ANNOTATION
#define HYDRA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability (a lock). `name` appears in diagnostics.
#define HYDRA_CAPABILITY(name) HYDRA_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define HYDRA_SCOPED_CAPABILITY HYDRA_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be read or written while holding `x`.
#define HYDRA_GUARDED_BY(x) HYDRA_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data may only be touched while holding `x` (the
/// pointer itself is unguarded).
#define HYDRA_PT_GUARDED_BY(x) HYDRA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capabilities exclusively before calling.
#define HYDRA_REQUIRES(...) \
  HYDRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capabilities at least shared before calling.
#define HYDRA_REQUIRES_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and does not
/// release it (lock functions; RAII constructors).
#define HYDRA_ACQUIRE(...) \
  HYDRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared-mode counterpart of HYDRA_ACQUIRE.
#define HYDRA_ACQUIRE_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (unlock functions; RAII
/// destructors — generic release also covers shared acquisition).
#define HYDRA_RELEASE(...) \
  HYDRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared-mode counterpart of HYDRA_RELEASE.
#define HYDRA_RELEASE_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define HYDRA_TRY_ACQUIRE(...) \
  HYDRA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock documentation for
/// functions that acquire it themselves).
#define HYDRA_EXCLUDES(...) HYDRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime-contract level that the calling thread already
/// holds the capability; the analysis trusts it from here on. This is
/// the documented seam for protocols the analysis cannot follow.
#define HYDRA_ASSERT_CAPABILITY(x) \
  HYDRA_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the capability guarding the
/// returned data.
#define HYDRA_RETURN_CAPABILITY(x) \
  HYDRA_THREAD_ANNOTATION(lock_returned(x))

/// Declares a lock-ordering edge: this capability must be acquired
/// after the listed ones.
#define HYDRA_ACQUIRED_AFTER(...) \
  HYDRA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Declares a lock-ordering edge: this capability must be acquired
/// before the listed ones.
#define HYDRA_ACQUIRED_BEFORE(...) \
  HYDRA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Turns the analysis off for one function body. Every use is a
/// documented protocol the analysis cannot express (single-writer
/// thread-local buffers, adopt-lock handoffs); say why at the use site.
#define HYDRA_NO_THREAD_SAFETY_ANALYSIS \
  HYDRA_THREAD_ANNOTATION(no_thread_safety_analysis)
