#include "util/stats.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace hydra::util {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  sum_ += other.sum_;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double paired_t_statistic(std::span<const double> a,
                          std::span<const double> b) {
  assert(a.size() == b.size());
  assert(a.size() >= 2);
  RunningStats diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  const double sd = diff.stddev();
  if (sd == 0.0) return 0.0;
  return diff.mean() / (sd / std::sqrt(static_cast<double>(diff.count())));
}

double t_critical_99(std::size_t degrees_of_freedom) {
  // Two-sided 99 % critical values of Student's t distribution.
  static constexpr double kTable[] = {
      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
  if (degrees_of_freedom == 0) return kTable[0];
  if (degrees_of_freedom <= 30) return kTable[degrees_of_freedom - 1];
  return 2.576;  // normal approximation
}

double confidence_half_width_99(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats s;
  for (double x : xs) s.add(x);
  const double se = s.stddev() / std::sqrt(static_cast<double>(s.count()));
  return t_critical_99(s.count() - 1) * se;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long long>(std::floor((x - lo_) / width));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long long>(counts_.size())) {
    idx = static_cast<long long>(counts_.size()) - 1;
  }
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::fraction_at_or_above(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) >= x) above += counts_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

}  // namespace hydra::util
