// Content hashing for cache keys (FNV-1a, 64-bit).
//
// The experiment engine memoizes completed runs keyed by a content hash
// of (workload profile, policy kind, policy parameters, SimConfig).
// HashSink accumulates the fields of those structs explicitly — never
// raw struct bytes, which would hash padding — so two logically equal
// configurations always collide on the same key and two differing ones
// practically never do (64-bit space, a handful of keys per process).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/units.h"

namespace hydra::util {

class HashSink {
 public:
  HashSink& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
    return *this;
  }

  HashSink& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }

  HashSink& f64(double v) {
    // +0.0 and -0.0 compare equal but have different bit patterns; fold
    // them so equal configs hash equally.
    if (v == 0.0) v = 0.0;
    return u64(std::bit_cast<std::uint64_t>(v));
  }

  /// Dimensioned quantities hash as their raw value, so adopting strong
  /// types in a config struct never changes its cache key.
  template <class D>
  HashSink& f64(Quantity<D> q) {
    return f64(q.value());
  }

  HashSink& f64(Celsius c) { return f64(c.value()); }

  HashSink& boolean(bool v) {
    byte(v ? 1 : 0);
    return *this;
  }

  /// Length-prefixed so {"ab","c"} and {"a","bc"} differ.
  HashSink& str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
    return *this;
  }

  std::uint64_t digest() const { return h_; }

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;  // FNV prime
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace hydra::util
