// Fixed-width ASCII table printing for bench/example output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hydra::util {

/// Collects rows of string cells and prints them aligned in columns.
/// The first row added is treated as the header and underlined.
class AsciiTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` decimal places.
  static std::string num(double v, int precision = 3);
  /// Format as a percentage with `precision` decimals ("12.3%").
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hydra::util
