#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/csv.h"

namespace hydra::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline() {
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int k = 0; k < indent_; ++k) *out_ << ' ';
  }
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": directly
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) *out_ << ',';
  stack_.back().first = false;
  newline();
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  *out_ << '{';
  stack_.push_back({true, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline();
  *out_ << '}';
  if (stack_.empty()) *out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  *out_ << '[';
  stack_.push_back({false, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline();
  *out_ << ']';
  if (stack_.empty()) *out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  prefix();
  *out_ << '"' << escape(k) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prefix();
  *out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  if (std::isfinite(v)) {
    *out_ << CsvWriter::format_double(v);
  } else {
    *out_ << "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  prefix();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  prefix();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  *out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace hydra::util
