#include "thermal/package_builder.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace hydra::thermal {

util::KelvinPerWatt plate_lateral_resistance(double w_inner, double side,
                                             double t, double k) {
  const double path = (side / 2.0 + w_inner / 2.0) / 2.0;
  const double width = (side + w_inner) / 2.0;
  return util::KelvinPerWatt(path / (k * t * width));
}

util::KelvinPerWatt die_to_spreader_resistance(double area,
                                               const Package& pkg) {
  return util::KelvinPerWatt(pkg.die_thickness_m / (2.0 * pkg.k_silicon * area) +
                             pkg.tim_thickness_m / (pkg.k_tim * area));
}

PackageNodes attach_package_nodes(RcNetwork& net, double die_width,
                                  double die_height, const Package& pkg) {
  PackageNodes nodes;
  const double die_area = die_width * die_height;
  const double sp_area = pkg.spreader_side_m * pkg.spreader_side_m;
  if (sp_area <= die_area) {
    throw std::invalid_argument("spreader must be larger than the die");
  }
  const double sink_area = pkg.sink_side_m * pkg.sink_side_m;
  if (sink_area <= sp_area) {
    throw std::invalid_argument("sink must be larger than the spreader");
  }

  static constexpr const char* kEdgeNames[4] = {"north", "south", "east",
                                                "west"};

  // --- Spreader --------------------------------------------------------
  const util::JoulesPerKelvin sp_center_cap(
      pkg.c_copper * die_area * pkg.spreader_thickness_m);
  const util::JoulesPerKelvin sp_edge_cap(
      pkg.c_copper * (sp_area - die_area) / 4.0 * pkg.spreader_thickness_m);
  nodes.spreader_center = net.add_node("spreader_center", sp_center_cap);
  for (int k = 0; k < 4; ++k) {
    nodes.spreader_edge[k] =
        net.add_node(std::string("spreader_") + kEdgeNames[k], sp_edge_cap);
  }
  const double w_die_mean = std::sqrt(die_width * die_height);
  const util::KelvinPerWatt r_sp_lat =
      4.0 * plate_lateral_resistance(w_die_mean, pkg.spreader_side_m,
                                     pkg.spreader_thickness_m, pkg.k_copper);
  for (int k = 0; k < 4; ++k) {
    net.connect(nodes.spreader_center, nodes.spreader_edge[k], r_sp_lat);
  }

  // --- Sink -------------------------------------------------------------
  const util::JoulesPerKelvin sink_center_cap(
      pkg.c_sink * sp_area * pkg.sink_thickness_m);
  const util::JoulesPerKelvin sink_edge_cap(
      pkg.c_sink * (sink_area - sp_area) / 4.0 * pkg.sink_thickness_m);
  nodes.sink_center = net.add_node("sink_center", sink_center_cap);
  for (int k = 0; k < 4; ++k) {
    nodes.sink_edge[k] =
        net.add_node(std::string("sink_") + kEdgeNames[k], sink_edge_cap);
  }

  // Spreader centre -> sink centre: half spreader + half sink vertically,
  // with 45-degree spreading from the die footprint into the sink base.
  const double spread_area = std::sqrt(die_area * sp_area);
  const util::KelvinPerWatt r_sp_to_sink(
      pkg.spreader_thickness_m / (2.0 * pkg.k_copper * die_area) +
      pkg.sink_thickness_m / (2.0 * pkg.k_sink * spread_area));
  net.connect(nodes.spreader_center, nodes.sink_center, r_sp_to_sink);

  const double sp_edge_area = (sp_area - die_area) / 4.0;
  const util::KelvinPerWatt r_spedge_to_sink(
      pkg.spreader_thickness_m / (2.0 * pkg.k_copper * sp_edge_area) +
      pkg.sink_thickness_m / (2.0 * pkg.k_sink * sp_edge_area));
  for (int k = 0; k < 4; ++k) {
    net.connect(nodes.spreader_edge[k], nodes.sink_edge[k],
                r_spedge_to_sink);
  }

  const util::KelvinPerWatt r_sink_lat =
      4.0 * plate_lateral_resistance(pkg.spreader_side_m, pkg.sink_side_m,
                                     pkg.sink_thickness_m, pkg.k_sink);
  for (int k = 0; k < 4; ++k) {
    net.connect(nodes.sink_center, nodes.sink_edge[k], r_sink_lat);
  }

  // Sink -> ambient: total conductance 1/r_convec split by footprint.
  const util::WattsPerKelvin g_total = 1.0 / pkg.r_convec;
  const double center_share = sp_area / sink_area;
  net.connect_to_ambient(nodes.sink_center,
                         1.0 / (g_total * center_share));
  const double edge_share = (1.0 - center_share) / 4.0;
  for (int k = 0; k < 4; ++k) {
    net.connect_to_ambient(nodes.sink_edge[k], 1.0 / (g_total * edge_share));
  }

  return nodes;
}

}  // namespace hydra::thermal
