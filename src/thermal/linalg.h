// Small dense linear algebra: just enough for compact thermal models.
//
// The RC networks built from block-level floorplans have a few dozen
// nodes, so dense LU with partial pivoting is simpler and faster than
// pulling in a sparse solver.
#pragma once

#include <cstddef>
#include <vector>

namespace hydra::thermal {

using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A x. Requires x.size() == cols().
  Vector multiply(const Vector& x) const;

  /// y = A x into a caller-provided buffer (resized to rows()); the
  /// allocation-free hot-path variant, dispatched through the SIMD
  /// backend (thermal/simd.h) with a bit-identical scalar twin. Throws
  /// std::invalid_argument when x.size() != cols() or when `y` aliases
  /// `x` (checked by address — the kernel reads x while writing y).
  void multiply_into(const Vector& x, Vector& y) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorisation with partial pivoting of a square matrix, reusable for
/// many right-hand sides (the transient solver refactors only when the
/// time step changes).
class LuFactorization {
 public:
  /// Factorise A. Throws std::invalid_argument if A is not square and
  /// std::runtime_error if A is numerically singular.
  explicit LuFactorization(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;

  /// Solve A x = b into a caller-provided buffer (resized to size());
  /// the allocation-free hot-path variant. Bit-identical to solve().
  /// `x` must not alias `b`. Thread-safe: solving is read-only, so one
  /// factorisation may serve many threads concurrently.
  void solve_into(const Vector& b, Vector& x) const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Convenience one-shot solve of A x = b.
Vector solve_linear(Matrix a, const Vector& b);

}  // namespace hydra::thermal
