#include "thermal/grid_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hydra::thermal {
namespace {

double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

GridThermalModel::GridThermalModel(const floorplan::Floorplan& fp,
                                   const Package& pkg,
                                   const GridModelConfig& cfg)
    : rows_(cfg.rows), cols_(cfg.cols), num_blocks_(fp.size()) {
  if (rows_ < 2 || cols_ < 2) {
    throw std::invalid_argument("grid must be at least 2x2");
  }
  if (fp.size() == 0 || !fp.covers_die(1e-6)) {
    throw std::invalid_argument(
        "grid model needs a floorplan that tiles its bounding box");
  }

  const double die_w = fp.die_width();
  const double die_h = fp.die_height();
  const double cell_w = die_w / static_cast<double>(cols_);
  const double cell_h = die_h / static_cast<double>(rows_);
  const double cell_area = cell_w * cell_h;
  cell_area_m2_ = cell_area;

  // --- Cell nodes --------------------------------------------------------
  const util::JoulesPerKelvin cell_cap(pkg.c_silicon * cell_area *
                                       pkg.die_thickness_m);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      network_.add_node(
          "cell_" + std::to_string(r) + "_" + std::to_string(c), cell_cap);
    }
  }

  // Lateral resistances between neighbouring cells.
  const util::KelvinPerWatt r_horizontal(
      cell_w / (pkg.k_silicon * pkg.die_thickness_m * cell_h));
  const util::KelvinPerWatt r_vertical(
      cell_h / (pkg.k_silicon * pkg.die_thickness_m * cell_w));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c + 1 < cols_) {
        network_.connect(cell_node(r, c), cell_node(r, c + 1), r_horizontal);
      }
      if (r + 1 < rows_) {
        network_.connect(cell_node(r, c), cell_node(r + 1, c), r_vertical);
      }
    }
  }

  // --- Package -------------------------------------------------------------
  package_ = attach_package_nodes(network_, die_w, die_h, pkg);
  const util::KelvinPerWatt r_cell_vertical =
      die_to_spreader_resistance(cell_area, pkg);
  for (std::size_t i = 0; i < num_cells(); ++i) {
    network_.connect(i, package_.spreader_center, r_cell_vertical);
  }

  // --- Block <-> cell overlap map -------------------------------------------
  overlap_.assign(num_cells(), std::vector<double>(num_blocks_, 0.0));
  block_area_.assign(num_blocks_, 0.0);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    block_area_[b] = fp.block(b).area();
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double x0 = static_cast<double>(c) * cell_w;
      const double y0 = static_cast<double>(r) * cell_h;
      for (std::size_t b = 0; b < num_blocks_; ++b) {
        const floorplan::Block& blk = fp.block(b);
        const double ox =
            interval_overlap(x0, x0 + cell_w, blk.x, blk.right());
        const double oy =
            interval_overlap(y0, y0 + cell_h, blk.y, blk.top());
        overlap_[cell_node(r, c)][b] = ox * oy / cell_area;
      }
    }
  }
}

Vector GridThermalModel::expand_power(const Vector& block_power) const {
  if (block_power.size() != num_blocks_) {
    throw std::invalid_argument("block power vector has wrong size");
  }
  Vector full(network_.size(), 0.0);
  for (std::size_t cell = 0; cell < num_cells(); ++cell) {
    double w = 0.0;
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      const double frac = overlap_[cell][b];
      if (frac <= 0.0) continue;
      // Power density of block b times the overlap area (frac is the
      // cell-area share, so the overlap area is frac * cell_area_m2_).
      w += block_power[b] / block_area_[b] * frac * cell_area_m2_;
    }
    full[cell] = w;
  }
  return full;
}

Vector GridThermalModel::block_temperatures(const Vector& node_celsius) const {
  if (node_celsius.size() != network_.size()) {
    throw std::invalid_argument("node temperature vector has wrong size");
  }
  Vector out(num_blocks_, 0.0);
  Vector weight(num_blocks_, 0.0);
  for (std::size_t cell = 0; cell < num_cells(); ++cell) {
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      const double frac = overlap_[cell][b];
      if (frac <= 0.0) continue;
      out[b] += node_celsius[cell] * frac;
      weight[b] += frac;
    }
  }
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    if (weight[b] > 0.0) out[b] /= weight[b];
  }
  return out;
}

double GridThermalModel::max_cell_temperature(
    const Vector& node_celsius) const {
  double m = node_celsius[0];
  for (std::size_t i = 1; i < num_cells(); ++i) {
    m = std::max(m, node_celsius[i]);
  }
  return m;
}

}  // namespace hydra::thermal
