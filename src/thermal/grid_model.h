// Grid-mode thermal model (HotSpot's finer-grained alternative to the
// block model).
//
// The die is discretised into rows x cols rectangular cells; each cell
// is one RC node with lateral resistances to its four neighbours and a
// vertical path into the shared spreader/sink package stack. Block power
// is distributed onto cells in proportion to geometric overlap, and cell
// temperatures can be aggregated back to per-block values (area-weighted)
// or inspected directly for intra-block gradients the block model cannot
// resolve.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"
#include "thermal/package.h"
#include "thermal/package_builder.h"
#include "thermal/rc_network.h"

namespace hydra::thermal {

struct GridModelConfig {
  std::size_t rows = 16;
  std::size_t cols = 16;
};

class GridThermalModel {
 public:
  /// Build from a floorplan that tiles its bounding box.
  GridThermalModel(const floorplan::Floorplan& fp, const Package& pkg,
                   const GridModelConfig& cfg = {});

  const RcNetwork& network() const { return network_; }
  RcNetwork& network_mutable() { return network_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_cells() const { return rows_ * cols_; }
  std::size_t cell_node(std::size_t row, std::size_t col) const {
    return row * cols_ + col;
  }
  const PackageNodes& package_nodes() const { return package_; }

  /// Distribute per-block power [W] onto cells by area overlap; package
  /// nodes get zero. Result size == network().size().
  Vector expand_power(const Vector& block_power) const;

  /// Area-weighted per-block mean temperature from a full node vector.
  Vector block_temperatures(const Vector& node_celsius) const;

  /// Hottest cell in a full node vector.
  double max_cell_temperature(const Vector& node_celsius) const;

  /// Fraction of cell (row, col)'s area covered by block `b`.
  double overlap_fraction(std::size_t row, std::size_t col,
                          std::size_t block) const {
    return overlap_[cell_node(row, col)][block];
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t num_blocks_;
  RcNetwork network_;
  PackageNodes package_;
  /// overlap_[cell][block] = fraction of the cell covered by the block.
  std::vector<std::vector<double>> overlap_;
  std::vector<double> block_area_;
  double cell_area_m2_ = 0.0;
};

}  // namespace hydra::thermal
