// Runtime-dispatched SIMD kernels for the thermal hot loop.
//
// Every dense kernel the per-step path runs — Matrix::multiply_into, the
// fused backward-Euler step, and the batched K-run panel step — routes
// through this shim. A backend is picked once at startup (AVX2+FMA on
// x86-64 when the CPU has it, NEON on AArch64, portable scalar
// otherwise) and can be overridden with HYDRA_SIMD=scalar|avx2|neon for
// bit-identity testing; requesting an unavailable backend falls back to
// scalar so a pinned CI leg never aborts.
//
// Bit-identity contract ("virtual four lanes"): every backend computes a
// dot product as four column-class partial sums — class j accumulates
// the terms of columns c with c % 4 == j, each advanced by a correctly
// rounded fused multiply-add — and reduces them in the fixed tree order
// (s0 + s2) + (s1 + s3). The scalar backend uses std::fma, AVX2 uses
// vfmadd over one 4-lane register, NEON uses two 2-lane registers; all
// three perform the identical sequence of correctly rounded operations
// per output element, so results are bit-identical across backends (the
// scalar twin is the reference, and simd_test asserts the equality down
// to full RunResults). Padded columns hold exact zeros and contribute
// exact no-op fmas, so the packed and unpacked kernels agree bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hydra::thermal::simd {

enum class Backend { kScalar, kAvx2, kNeon };

/// Accumulator lane width of the virtual-lane contract (doubles per
/// AVX2 register). Rows and panels are padded to multiples of this.
inline constexpr std::size_t kLaneWidth = 4;

/// `n` rounded up to a multiple of kLaneWidth.
inline std::size_t padded_size(std::size_t n) {
  return (n + (kLaneWidth - 1)) & ~(kLaneWidth - 1);
}

/// True when this build/CPU can execute `b`.
bool backend_available(Backend b);

/// The backend the kernels dispatch to. Resolved once: HYDRA_SIMD if set
/// (unavailable or unknown values fall back to scalar), else the best
/// available backend for this CPU.
Backend active_backend();

/// Test seam: force the dispatch (simd_test flips between scalar and the
/// native backend inside one process to prove bit-identity). Requests
/// for an unavailable backend degrade to scalar, like the env override.
void set_backend_for_test(Backend b);

const char* backend_name(Backend b);

/// Row-major matrix with each row zero-padded to a multiple of
/// kLaneWidth columns, so the packed kernels' inner loops are pure
/// stride-1 4-wide FMA with no tail. Built once per FusedStepOperator;
/// plain std::vector storage (the kernels use unaligned loads, which
/// cost nothing on the hardware that has FMA, and an aligned allocator
/// would bypass the benches' global operator-new counters).
class PackedMatrix {
 public:
  PackedMatrix() = default;
  /// Pack `rows` x `cols` row-major data (stride == cols).
  PackedMatrix(std::size_t rows, std::size_t cols, const double* row_major);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  const double* row(std::size_t r) const { return &data_[r * stride_]; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

/// y[r] = sum_c a[r * cols + c] * x[c] for a dense row-major `a`.
/// Handles any shape; tail columns fold into their column class.
/// `y` must not alias `a` or `x`.
void matvec(const double* a, std::size_t rows, std::size_t cols,
            const double* x, double* y);

/// y[r] = sum_c M(r, c) * x[c] over a packed matrix. `x` must have
/// m.stride() entries with the padded tail zeroed; `y` gets m.rows().
void packed_matvec(const PackedMatrix& m, const double* x, double* y);

/// Mat-panel product for the batched stepper: K independent right-hand
/// sides in column-major lanes. x holds m.cols() rows of `width` lanes
/// (x[c * width + k] is lane k's element c); out gets m.rows() rows laid
/// out the same way. `width` must be a multiple of kLaneWidth. Lane k's
/// arithmetic is exactly the virtual-lane dot product of matvec() on its
/// own column — independent of width and of the other lanes — so a
/// batched run is bit-identical to its serial twin.
void panel_matvec(const PackedMatrix& m, const double* x, std::size_t width,
                  double* out);

/// Sparse gather dot product: sum_p vals[p] * x[idx[p]] under the same
/// virtual-lane contract as matvec() — term p joins column class p % 4
/// via a correctly rounded fma and the classes reduce as
/// (s0 + s2) + (s1 + s3). The sparse triangular solves run on this.
/// Indices are int32 so AVX2 can feed them straight to vgatherdpd; the
/// scalar and NEON twins walk the same class sequence with std::fma.
double gather_dot(const double* vals, const std::int32_t* idx,
                  std::size_t nnz, const double* x);

/// Panel twin of gather_dot for K lockstep lanes: lane k computes
/// sum_p vals[p] * x[idx[p] * width + k] and writes it to out[k]. Lane
/// arithmetic is exactly gather_dot()'s operation sequence on that
/// lane's column, so a batched sparse solve is bit-identical to its
/// serial twin. `width` must be a multiple of kLaneWidth (panels are
/// padded to the SIMD stride).
void panel_gather_dot(const double* vals, const std::int32_t* idx,
                      std::size_t nnz, const double* x, std::size_t width,
                      double* out);

}  // namespace hydra::thermal::simd
