#include "thermal/solver.h"

#include <cmath>
#include <stdexcept>

namespace hydra::thermal {

Vector steady_state(const RcNetwork& net, const Vector& power,
                    double ambient_celsius) {
  if (power.size() != net.size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  Vector rise = solve_linear(net.conductance_matrix(), power);
  for (double& t : rise) t += ambient_celsius;
  return rise;
}

TransientSolver::TransientSolver(const RcNetwork& net, double ambient_celsius,
                                 Scheme scheme)
    : net_(&net),
      ambient_(ambient_celsius),
      scheme_(scheme),
      g_(net.conductance_matrix()),
      celsius_(net.size(), ambient_celsius) {}

void TransientSolver::set_temperatures(const Vector& celsius) {
  if (celsius.size() != net_->size()) {
    throw std::invalid_argument("temperature vector size mismatch");
  }
  celsius_ = celsius;
}

void TransientSolver::initialize_steady_state(const Vector& power) {
  celsius_ = steady_state(*net_, power, ambient_);
}

void TransientSolver::step(const Vector& power, double dt) {
  if (power.size() != net_->size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  if (dt <= 0.0) {
    throw std::invalid_argument("time step must be positive");
  }
  if (scheme_ == Scheme::kBackwardEuler) {
    step_backward_euler(power, dt);
  } else {
    step_rk4(power, dt);
  }
}

void TransientSolver::step_backward_euler(const Vector& power, double dt) {
  const std::size_t n = net_->size();
  // Round dt to 3 significant figures so DVS-induced variation in the
  // wall-clock length of a 10k-cycle interval maps onto a bounded set of
  // cached factorisations. The rounded dt is used for the integration
  // itself, keeping matrix and right-hand side consistent (sub-percent
  // step-length error, negligible against the ms-scale time constants).
  const double mag = std::pow(10.0, std::floor(std::log10(dt)) - 2.0);
  dt = std::round(dt / mag) * mag;
  auto it = lu_cache_.find(dt);
  if (it == lu_cache_.end()) {
    Matrix a = g_;
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) += net_->capacitance(i) / dt;
    }
    it = lu_cache_
             .emplace(dt, std::make_unique<LuFactorization>(std::move(a)))
             .first;
  }
  Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double rise = celsius_[i] - ambient_;
    rhs[i] = net_->capacitance(i) / dt * rise + power[i];
  }
  const Vector rise_next = it->second->solve(rhs);
  for (std::size_t i = 0; i < n; ++i) celsius_[i] = ambient_ + rise_next[i];
}

Vector TransientSolver::derivative(const Vector& rise,
                                   const Vector& power) const {
  const std::size_t n = net_->size();
  Vector flow = g_.multiply(rise);
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = (power[i] - flow[i]) / net_->capacitance(i);
  }
  return d;
}

void TransientSolver::step_rk4(const Vector& power, double dt) {
  const std::size_t n = net_->size();
  Vector rise(n);
  for (std::size_t i = 0; i < n; ++i) rise[i] = celsius_[i] - ambient_;

  const Vector k1 = derivative(rise, power);
  Vector tmp(n);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = rise[i] + dt / 2.0 * k1[i];
  const Vector k2 = derivative(tmp, power);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = rise[i] + dt / 2.0 * k2[i];
  const Vector k3 = derivative(tmp, power);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = rise[i] + dt * k3[i];
  const Vector k4 = derivative(tmp, power);

  for (std::size_t i = 0; i < n; ++i) {
    rise[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    celsius_[i] = ambient_ + rise[i];
  }
}

}  // namespace hydra::thermal
