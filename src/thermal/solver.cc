#include "thermal/solver.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace hydra::thermal {

Vector steady_state(const RcNetwork& net, const Vector& power,
                    util::Celsius ambient) {
  if (power.size() != net.size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  Vector rise = solve_linear(net.conductance_matrix(), power);
  for (double& t : rise) t += ambient.value();
  return rise;
}

Vector steady_state(const LuFactorization& g_lu, const Vector& power,
                    util::Celsius ambient) {
  if (power.size() != g_lu.size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  Vector rise = g_lu.solve(power);
  for (double& t : rise) t += ambient.value();
  return rise;
}

void steady_state_into(const LuFactorization& g_lu, const Vector& power,
                       util::Celsius ambient, Vector& out) {
  if (power.size() != g_lu.size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  g_lu.solve_into(power, out);
  for (double& t : out) t += ambient.value();
}

void steady_state_into(const SparseCholesky& g_chol, const Vector& power,
                       util::Celsius ambient, Vector& out, Vector& work) {
  if (power.size() != g_chol.size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  out.resize(g_chol.size());
  work.resize(g_chol.size());
  g_chol.solve_into(power.data(), out.data(), work.data());
  for (double& t : out) t += ambient.value();
}

LuCache::LuCache(const RcNetwork& net)
    : g_(net.conductance_matrix()),
      g_csr_(net.conductance_csr()),
      capacitance_(net.size()) {
  for (std::size_t i = 0; i < capacitance_.size(); ++i) {
    capacitance_[i] = net.capacitance(i).value();
  }
}

const LuFactorization& LuCache::steady() const {
  const util::LockGuard lock(mu_);
  if (!steady_lu_) {
    static const obs::Counter factorizations =
        obs::metrics().counter("thermal.lu_factorizations");
    factorizations.add();
    const obs::ScopedSpan span(obs::tracer(), "thermal", "lu_factorize",
                               "steady");
    steady_lu_ = std::make_unique<LuFactorization>(g_);
  }
  return *steady_lu_;
}

const LuFactorization& LuCache::backward_euler(double dt) const {
  const util::LockGuard lock(mu_);
  auto it = be_cache_.find(dt);
  if (it == be_cache_.end()) {
    static const obs::Counter factorizations =
        obs::metrics().counter("thermal.lu_factorizations");
    factorizations.add();
    const obs::ScopedSpan span(obs::tracer(), "thermal", "lu_factorize",
                               "backward_euler");
    Matrix a = g_;
    for (std::size_t i = 0; i < capacitance_.size(); ++i) {
      a(i, i) += capacitance_[i] / dt;
    }
    it = be_cache_
             .emplace(dt, std::make_unique<LuFactorization>(std::move(a)))
             .first;
  }
  return *it->second;
}

const FusedStepOperator& LuCache::fused(double dt) const {
  const util::LockGuard lock(mu_);
  auto it = fused_cache_.find(dt);
  if (it == fused_cache_.end()) {
    static const obs::Counter builds =
        obs::metrics().counter("thermal.fused_operator_builds");
    builds.add();
    const obs::ScopedSpan span(obs::tracer(), "thermal", "lu_factorize",
                               "fused_be");
    const std::size_t n = capacitance_.size();
    Matrix a = g_;
    for (std::size_t i = 0; i < n; ++i) a(i, i) += capacitance_[i] / dt;
    const LuFactorization lu(std::move(a));
    auto op = std::make_unique<FusedStepOperator>();
    op->m = Matrix(n, n);
    op->n = Matrix(n, n);
    // Column j of N is the solve against the j-th basis vector; M scales
    // each column by that node's C/dt.
    Vector basis(n, 0.0);
    Vector col(n);
    for (std::size_t j = 0; j < n; ++j) {
      basis[j] = 1.0;
      lu.solve_into(basis, col);
      basis[j] = 0.0;
      const double c_over_dt = capacitance_[j] / dt;
      for (std::size_t i = 0; i < n; ++i) {
        op->n(i, j) = col[i];
        op->m(i, j) = col[i] * c_over_dt;
      }
    }
    op->pm = simd::PackedMatrix(n, n, &op->m(0, 0));
    op->pn = simd::PackedMatrix(n, n, &op->n(0, 0));
    it = fused_cache_.emplace(dt, std::move(op)).first;
  }
  return *it->second;
}

const SparseStepOperator& LuCache::sparse(double dt) const {
  const util::LockGuard lock(mu_);
  auto it = sparse_cache_.find(dt);
  if (it == sparse_cache_.end()) {
    static const obs::Counter builds =
        obs::metrics().counter("thermal.sparse_operator_builds");
    builds.add();
    const obs::ScopedSpan span(obs::tracer(), "thermal", "sparse_factorize",
                               "sparse_be");
    const std::size_t n = capacitance_.size();
    // Assemble C/dt + G directly in CSR: copy the G structure and add
    // the capacitive term on the (always present) diagonal entries.
    CsrMatrix a = g_csr_;
    Vector c_over_dt(n);
    for (std::size_t i = 0; i < n; ++i) {
      c_over_dt[i] = capacitance_[i] / dt;
      for (std::size_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
        if (static_cast<std::size_t>(a.col_idx[p]) == i) {
          a.values[p] += c_over_dt[i];
          break;
        }
      }
    }
    it = sparse_cache_
             .emplace(dt, std::make_unique<SparseStepOperator>(
                              SparseCholesky(a), std::move(c_over_dt)))
             .first;
  }
  return *it->second;
}

const SparseCholesky& LuCache::steady_sparse() const {
  const util::LockGuard lock(mu_);
  if (!steady_chol_) {
    static const obs::Counter builds =
        obs::metrics().counter("thermal.sparse_operator_builds");
    builds.add();
    const obs::ScopedSpan span(obs::tracer(), "thermal", "sparse_factorize",
                               "steady");
    steady_chol_ = std::make_unique<SparseCholesky>(g_csr_);
  }
  return *steady_chol_;
}

TransientSolver::TransientSolver(const RcNetwork& net, util::Celsius ambient,
                                 Scheme scheme,
                                 std::shared_ptr<const LuCache> lu_cache)
    : net_(&net),
      ambient_(ambient.value()),
      scheme_(scheme),
      g_(net.conductance_matrix()),
      celsius_(net.size(), ambient.value()),
      lu_cache_(lu_cache ? std::move(lu_cache)
                         : std::make_shared<const LuCache>(net)),
      rhs_(net.size()),
      rise_(net.size()),
      k1_(net.size()),
      k2_(net.size()),
      k3_(net.size()),
      k4_(net.size()),
      tmp_(net.size()),
      flow_(net.size()),
      rise_pad_(simd::padded_size(net.size()), 0.0),
      pow_pad_(simd::padded_size(net.size()), 0.0),
      chol_work_(net.size()) {
  use_sparse_ = scheme_ == Scheme::kFusedBE && use_sparse_step(net.size());
}

void TransientSolver::set_temperatures(const Vector& celsius) {
  if (celsius.size() != net_->size()) {
    throw std::invalid_argument("temperature vector size mismatch");
  }
  celsius_ = celsius;
}

void TransientSolver::initialize_steady_state(const Vector& power) {
  if (use_sparse_) {
    // Same G, factorised sparsely; agrees with the dense steady solve
    // to solver round-off (sparse_test bounds it). A factorisation
    // failure (never expected — G is SPD by construction) falls back to
    // the dense path rather than failing the run.
    try {
      steady_state_into(lu_cache_->steady_sparse(), power,
                        util::Celsius(ambient_), celsius_, chol_work_);
      return;
    } catch (const std::exception&) {
    }
  }
  celsius_ = steady_state(lu_cache_->steady(), power, util::Celsius(ambient_));
}

void TransientSolver::step(const Vector& power, util::Seconds dt) {
  if (power.size() != net_->size()) {
    throw std::invalid_argument("power vector size mismatch");
  }
  if (dt.value() <= 0.0) {
    throw std::invalid_argument("time step must be positive");
  }
  switch (scheme_) {
    case Scheme::kBackwardEuler:
      step_backward_euler(power, dt.value());
      break;
    case Scheme::kFusedBE:
      if (use_sparse_) {
        step_sparse_be(power, dt.value());
      } else {
        step_fused_be(power, dt.value());
      }
      break;
    case Scheme::kRk4:
      step_rk4(power, dt.value());
      break;
  }
}

double round_step_dt(double dt) {
  const double mag = std::pow(10.0, std::floor(std::log10(dt)) - 2.0);
  return std::round(dt / mag) * mag;
}

void TransientSolver::step_backward_euler(const Vector& power, double dt) {
  static const obs::Counter be_steps =
      obs::metrics().counter("thermal.be_steps");
  be_steps.add();
  const std::size_t n = net_->size();
  dt = round_step_dt(dt);
  if (last_lu_ == nullptr || dt != last_dt_) {
    last_lu_ = &lu_cache_->backward_euler(dt);
    last_dt_ = dt;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double rise = celsius_[i] - ambient_;
    rhs_[i] = net_->capacitance(i).value() / dt * rise + power[i];
  }
  last_lu_->solve_into(rhs_, rise_);
  for (std::size_t i = 0; i < n; ++i) celsius_[i] = ambient_ + rise_[i];
}

void TransientSolver::step_fused_be(const Vector& power, double dt) {
  // After a guard trip the fused operator is suspect for good: stay on
  // the reference LU scheme for the rest of this solver's life.
  if (fused_disabled_) {
    step_backward_euler(power, dt);
    return;
  }
  static const obs::Counter fused_steps =
      obs::metrics().counter("thermal.fused_be_steps");
  fused_steps.add();
  const std::size_t n = net_->size();
  const double dt_in = dt;
  dt = round_step_dt(dt);
  if (last_fused_ == nullptr || dt != last_fused_dt_) {
    last_fused_ = &lu_cache_->fused(dt);
    last_fused_dt_ = dt;
  }
  // rise' = M rise + N P over the packed padded-row operators — all
  // scratch preallocated, so the steady-state path allocates nothing
  // (the operator itself is built on first use).
  // The candidate update is validated in scratch before celsius_ is
  // touched, so a rejected step leaves the state exactly as it was and
  // the LU fallback recomputes the same step from the same inputs.
  for (std::size_t i = 0; i < n; ++i) {
    rise_pad_[i] = celsius_[i] - ambient_;
    pow_pad_[i] = power[i];
  }
  simd::packed_matvec(last_fused_->pm, rise_pad_.data(), tmp_.data());
  simd::packed_matvec(last_fused_->pn, pow_pad_.data(), rhs_.data());
  if (inject_fused_fault_) {
    inject_fused_fault_ = false;
    tmp_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double rise = tmp_[i] + rhs_[i];
    tmp_[i] = rise;
    // !(|rise| < bound) also catches NaN (any comparison is false).
    if (!(std::abs(rise) < kMaxPlausibleRise)) ok = false;
  }
  if (ok) {
    for (std::size_t i = 0; i < n; ++i) celsius_[i] = ambient_ + tmp_[i];
    return;
  }
  ++fused_guard_trips_;
  fused_disabled_ = true;
  static const obs::Counter guard_trips =
      obs::metrics().counter("thermal.fused_guard_trips");
  guard_trips.add();
  step_backward_euler(power, dt_in);
}

void TransientSolver::step_sparse_be(const Vector& power, double dt) {
  // Mirror of step_fused_be's guard/fallback protocol on the sparse
  // substitution path: after a trip (or a failed factorisation) the
  // operator is suspect for good — stay on the reference LU scheme.
  if (fused_disabled_) {
    step_backward_euler(power, dt);
    return;
  }
  static const obs::Counter sparse_steps =
      obs::metrics().counter("thermal.sparse_be_steps");
  sparse_steps.add();
  const std::size_t n = net_->size();
  const double dt_in = dt;
  dt = round_step_dt(dt);
  if (last_sparse_ == nullptr || dt != last_sparse_dt_) {
    const SparseStepOperator* op = nullptr;
    try {
      op = &lu_cache_->sparse(dt);
    } catch (const std::exception&) {
      op = nullptr;
    }
    if (op == nullptr) {
      ++fused_guard_trips_;
      fused_disabled_ = true;
      static const obs::Counter guard_trips =
          obs::metrics().counter("thermal.fused_guard_trips");
      guard_trips.add();
      step_backward_euler(power, dt_in);
      return;
    }
    last_sparse_ = op;
    last_sparse_dt_ = dt;
  }
  // rhs = (C/dt) rise + P, then one LDL^T substitution — all scratch
  // preallocated, so the steady-state path allocates nothing. The
  // explicit fma keeps the rhs arithmetic identical to the batched
  // panel stepper's (bit-identity depends on it; the compiler may or
  // may not contract a * b + c on its own).
  const Vector& c_over_dt = last_sparse_->c_over_dt;
  for (std::size_t i = 0; i < n; ++i) {
    rhs_[i] = std::fma(c_over_dt[i], celsius_[i] - ambient_, power[i]);
  }
  last_sparse_->chol.solve_into(rhs_.data(), tmp_.data(), chol_work_.data());
  if (inject_fused_fault_) {
    inject_fused_fault_ = false;
    tmp_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  // Same validate-in-scratch protocol as the fused step: a rejected
  // candidate leaves celsius_ untouched and LU recomputes the step.
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    // !(|rise| < bound) also catches NaN (any comparison is false).
    if (!(std::abs(tmp_[i]) < kMaxPlausibleRise)) ok = false;
  }
  if (ok) {
    for (std::size_t i = 0; i < n; ++i) celsius_[i] = ambient_ + tmp_[i];
    return;
  }
  ++fused_guard_trips_;
  fused_disabled_ = true;
  static const obs::Counter guard_trips =
      obs::metrics().counter("thermal.fused_guard_trips");
  guard_trips.add();
  step_backward_euler(power, dt_in);
}

void TransientSolver::derivative_into(const Vector& rise, const Vector& power,
                                      Vector& d) {
  const std::size_t n = net_->size();
  g_.multiply_into(rise, flow_);
  d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = (power[i] - flow_[i]) / net_->capacitance(i).value();
  }
}

void TransientSolver::step_rk4(const Vector& power, double dt) {
  const std::size_t n = net_->size();
  for (std::size_t i = 0; i < n; ++i) rise_[i] = celsius_[i] - ambient_;

  derivative_into(rise_, power, k1_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = rise_[i] + dt / 2.0 * k1_[i];
  derivative_into(tmp_, power, k2_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = rise_[i] + dt / 2.0 * k2_[i];
  derivative_into(tmp_, power, k3_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = rise_[i] + dt * k3_[i];
  derivative_into(tmp_, power, k4_);

  for (std::size_t i = 0; i < n; ++i) {
    rise_[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    celsius_[i] = ambient_ + rise_[i];
  }
}

}  // namespace hydra::thermal
