#include "thermal/batch.h"

#include <cmath>
#include <stdexcept>

namespace hydra::thermal {

BatchedThermalState::BatchedThermalState(std::size_t nodes, std::size_t width)
    : nodes_(nodes),
      width_(width),
      stride_(simd::padded_size(width)),
      rise_panel_(nodes * stride_, 0.0),
      power_panel_(nodes * stride_, 0.0),
      out_m_(nodes * stride_, 0.0),
      out_n_(nodes * stride_, 0.0),
      work_panel_(nodes * stride_, 0.0),
      lane_tmp_(stride_, 0.0) {
  if (width == 0) throw std::invalid_argument("batch width must be positive");
}

void BatchedThermalState::load_lane(std::size_t k, const double* rise,
                                    const double* power) {
  if (k >= width_) throw std::out_of_range("batch lane out of range");
  for (std::size_t c = 0; c < nodes_; ++c) {
    rise_panel_[c * stride_ + k] = rise[c];
    power_panel_[c * stride_ + k] = power[c];
  }
}

void BatchedThermalState::step(const FusedStepOperator& op) {
  if (op.pm.rows() != nodes_ || op.pm.cols() != nodes_) {
    throw std::invalid_argument("operator size mismatch in batched step");
  }
  simd::panel_matvec(op.pm, rise_panel_.data(), stride_, out_m_.data());
  simd::panel_matvec(op.pn, power_panel_.data(), stride_, out_n_.data());
  // Same commit order as the serial step: (M rise) + (N P) per element.
  for (std::size_t i = 0; i < out_m_.size(); ++i) out_m_[i] += out_n_[i];
}

void BatchedThermalState::step(const SparseStepOperator& op) {
  if (op.chol.size() != nodes_) {
    throw std::invalid_argument("operator size mismatch in batched step");
  }
  // rhs = (C/dt) rise + P per lane — the explicit fma matches the
  // serial step_sparse_be expression bit for bit — then one panel
  // substitution whose per-lane arithmetic is the serial solve.
  for (std::size_t c = 0; c < nodes_; ++c) {
    const double cd = op.c_over_dt[c];
    const double* rise = &rise_panel_[c * stride_];
    const double* power = &power_panel_[c * stride_];
    double* rhs = &out_n_[c * stride_];
    for (std::size_t k = 0; k < stride_; ++k) {
      rhs[k] = std::fma(cd, rise[k], power[k]);
    }
  }
  op.chol.panel_solve_into(out_n_.data(), stride_, out_m_.data(),
                           work_panel_.data(), lane_tmp_.data());
}

void BatchedThermalState::store_lane(std::size_t k, double* rise_out) const {
  if (k >= width_) throw std::out_of_range("batch lane out of range");
  for (std::size_t c = 0; c < nodes_; ++c) {
    rise_out[c] = out_m_[c * stride_ + k];
  }
}

}  // namespace hydra::thermal
