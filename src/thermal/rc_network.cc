#include "thermal/rc_network.h"

#include <stdexcept>

namespace hydra::thermal {

std::size_t RcNetwork::add_node(std::string name,
                                util::JoulesPerKelvin capacitance) {
  if (capacitance.value() <= 0.0) {
    throw std::invalid_argument("node '" + name +
                                "' needs positive capacitance");
  }
  names_.push_back(std::move(name));
  capacitance_.push_back(capacitance.value());
  ambient_conductance_.push_back(0.0);
  return names_.size() - 1;
}

void RcNetwork::connect(std::size_t a, std::size_t b,
                        util::KelvinPerWatt ohms) {
  if (a >= size() || b >= size() || a == b) {
    throw std::invalid_argument("bad node indices in connect()");
  }
  if (ohms.value() <= 0.0) {
    throw std::invalid_argument("thermal resistance must be positive");
  }
  edges_.push_back({a, b, 1.0 / ohms.value()});
}

void RcNetwork::connect_to_ambient(std::size_t a, util::KelvinPerWatt ohms) {
  if (a >= size()) {
    throw std::invalid_argument("bad node index in connect_to_ambient()");
  }
  if (ohms.value() <= 0.0) {
    throw std::invalid_argument("thermal resistance must be positive");
  }
  ambient_conductance_[a] += 1.0 / ohms.value();
}

void RcNetwork::scale_capacitances(double inv_factor) {
  if (inv_factor <= 0.0) {
    throw std::invalid_argument("capacitance scale factor must be positive");
  }
  for (double& c : capacitance_) c /= inv_factor;
}

Matrix RcNetwork::conductance_matrix() const {
  const std::size_t n = size();
  Matrix g(n, n, 0.0);
  for (const Edge& e : edges_) {
    g(e.a, e.a) += e.conductance_w_per_k;
    g(e.b, e.b) += e.conductance_w_per_k;
    g(e.a, e.b) -= e.conductance_w_per_k;
    g(e.b, e.a) -= e.conductance_w_per_k;
  }
  for (std::size_t i = 0; i < n; ++i) g(i, i) += ambient_conductance_[i];
  return g;
}

util::WattsPerKelvin RcNetwork::total_ambient_conductance() const {
  double total = 0.0;
  for (double g : ambient_conductance_) total += g;
  return util::WattsPerKelvin(total);
}

}  // namespace hydra::thermal
