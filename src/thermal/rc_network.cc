#include "thermal/rc_network.h"

#include <stdexcept>

namespace hydra::thermal {

std::size_t RcNetwork::add_node(std::string name,
                                util::JoulesPerKelvin capacitance) {
  if (capacitance.value() <= 0.0) {
    throw std::invalid_argument("node '" + name +
                                "' needs positive capacitance");
  }
  names_.push_back(std::move(name));
  capacitance_.push_back(capacitance.value());
  ambient_conductance_.push_back(0.0);
  return names_.size() - 1;
}

void RcNetwork::connect(std::size_t a, std::size_t b,
                        util::KelvinPerWatt ohms) {
  if (a >= size() || b >= size() || a == b) {
    throw std::invalid_argument("bad node indices in connect()");
  }
  if (ohms.value() <= 0.0) {
    throw std::invalid_argument("thermal resistance must be positive");
  }
  edges_.push_back({a, b, 1.0 / ohms.value()});
}

void RcNetwork::connect_to_ambient(std::size_t a, util::KelvinPerWatt ohms) {
  if (a >= size()) {
    throw std::invalid_argument("bad node index in connect_to_ambient()");
  }
  if (ohms.value() <= 0.0) {
    throw std::invalid_argument("thermal resistance must be positive");
  }
  ambient_conductance_[a] += 1.0 / ohms.value();
}

void RcNetwork::scale_capacitances(double inv_factor) {
  if (inv_factor <= 0.0) {
    throw std::invalid_argument("capacitance scale factor must be positive");
  }
  for (double& c : capacitance_) c /= inv_factor;
}

Matrix RcNetwork::conductance_matrix() const {
  const std::size_t n = size();
  Matrix g(n, n, 0.0);
  for (const Edge& e : edges_) {
    g(e.a, e.a) += e.conductance_w_per_k;
    g(e.b, e.b) += e.conductance_w_per_k;
    g(e.a, e.b) -= e.conductance_w_per_k;
    g(e.b, e.a) -= e.conductance_w_per_k;
  }
  for (std::size_t i = 0; i < n; ++i) g(i, i) += ambient_conductance_[i];
  return g;
}

CsrMatrix RcNetwork::conductance_csr() const {
  const std::size_t n = size();
  // Pass 1: row populations. Each edge puts one off-diagonal entry in
  // both endpoint rows (duplicates from parallel edges merge in pass 3);
  // every row carries a diagonal entry.
  std::vector<std::size_t> count(n, 1);
  for (const Edge& e : edges_) {
    ++count[e.a];
    ++count[e.b];
  }
  CsrMatrix g;
  g.rows = n;
  g.cols = n;
  g.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    g.row_ptr[i + 1] = g.row_ptr[i] + count[i];
  }
  g.col_idx.assign(g.row_ptr[n], 0);
  g.values.assign(g.row_ptr[n], 0.0);

  // Pass 2: scatter. Diagonal first (ambient tie seed), then the edge
  // couplings; the Laplacian diagonal accumulates in place.
  std::vector<std::size_t> fill(n);
  for (std::size_t i = 0; i < n; ++i) {
    fill[i] = g.row_ptr[i] + 1;
    g.col_idx[g.row_ptr[i]] = static_cast<std::int32_t>(i);
    g.values[g.row_ptr[i]] = ambient_conductance_[i];
  }
  for (const Edge& e : edges_) {
    g.values[g.row_ptr[e.a]] += e.conductance_w_per_k;
    g.values[g.row_ptr[e.b]] += e.conductance_w_per_k;
    g.col_idx[fill[e.a]] = static_cast<std::int32_t>(e.b);
    g.values[fill[e.a]] = -e.conductance_w_per_k;
    ++fill[e.a];
    g.col_idx[fill[e.b]] = static_cast<std::int32_t>(e.a);
    g.values[fill[e.b]] = -e.conductance_w_per_k;
    ++fill[e.b];
  }

  // Pass 3: sort each row by column (insertion sort — rows are a
  // stencil plus a package star, i.e. short) and merge duplicates.
  std::size_t out = 0;
  std::size_t row_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p0 = g.row_ptr[i];
    const std::size_t p1 = g.row_ptr[i + 1];
    for (std::size_t p = p0 + 1; p < p1; ++p) {
      const std::int32_t c = g.col_idx[p];
      const double v = g.values[p];
      std::size_t q = p;
      while (q > p0 && g.col_idx[q - 1] > c) {
        g.col_idx[q] = g.col_idx[q - 1];
        g.values[q] = g.values[q - 1];
        --q;
      }
      g.col_idx[q] = c;
      g.values[q] = v;
    }
    row_start = out;
    for (std::size_t p = p0; p < p1; ++p) {
      if (out > row_start && g.col_idx[out - 1] == g.col_idx[p]) {
        g.values[out - 1] += g.values[p];
      } else {
        g.col_idx[out] = g.col_idx[p];
        g.values[out] = g.values[p];
        ++out;
      }
    }
    g.row_ptr[i] = row_start;
  }
  g.row_ptr[n] = out;
  g.col_idx.resize(out);
  g.values.resize(out);
  return g;
}

util::WattsPerKelvin RcNetwork::total_ambient_conductance() const {
  double total = 0.0;
  for (double g : ambient_conductance_) total += g;
  return util::WattsPerKelvin(total);
}

}  // namespace hydra::thermal
