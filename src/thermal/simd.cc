#include "thermal/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HYDRA_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define HYDRA_SIMD_NEON 1
#endif

namespace hydra::thermal::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference backend. The virtual-lane contract in one place:
// column class c % 4 accumulates with a correctly rounded std::fma, and
// the reduction tree is (s0 + s2) + (s1 + s3). Every vector backend
// below performs this exact operation sequence per output element.

void matvec_scalar(const double* a, std::size_t rows, std::size_t cols,
                   const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a + r * cols;
    double s[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t c = 0; c < cols; ++c) {
      s[c & 3] = std::fma(row[c], x[c], s[c & 3]);
    }
    y[r] = (s[0] + s[2]) + (s[1] + s[3]);
  }
}

void panel_scalar(const PackedMatrix& m, const double* x, std::size_t width,
                  double* out) {
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (std::size_t k = 0; k < width; ++k) {
      double s[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t c = 0; c < cols; ++c) {
        s[c & 3] = std::fma(row[c], x[c * width + k], s[c & 3]);
      }
      out[r * width + k] = (s[0] + s[2]) + (s[1] + s[3]);
    }
  }
}

double gather_dot_scalar(const double* vals, const std::int32_t* idx,
                         std::size_t nnz, const double* x) {
  double s[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t p = 0; p < nnz; ++p) {
    s[p & 3] = std::fma(vals[p], x[idx[p]], s[p & 3]);
  }
  return (s[0] + s[2]) + (s[1] + s[3]);
}

void panel_gather_dot_scalar(const double* vals, const std::int32_t* idx,
                             std::size_t nnz, const double* x,
                             std::size_t width, double* out) {
  for (std::size_t k = 0; k < width; ++k) {
    double s[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t p = 0; p < nnz; ++p) {
      s[p & 3] = std::fma(
          vals[p], x[static_cast<std::size_t>(idx[p]) * width + k], s[p & 3]);
    }
    out[k] = (s[0] + s[2]) + (s[1] + s[3]);
  }
}

// ---------------------------------------------------------------------------
// AVX2+FMA backend. Compiled with a per-function target attribute so the
// translation unit itself needs no -mavx2 (the binary must still run on
// SSE2-only hosts, where dispatch picks scalar).

#if defined(HYDRA_SIMD_X86)

__attribute__((target("avx2,fma"))) void matvec_avx2(const double* a,
                                                     std::size_t rows,
                                                     std::size_t cols,
                                                     const double* x,
                                                     double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a + r * cols;
    __m256d acc = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      acc = _mm256_fmadd_pd(_mm256_loadu_pd(row + c), _mm256_loadu_pd(x + c),
                            acc);
    }
    // Register lane j holds column class j; fold tail columns into
    // their class with the same correctly rounded fma.
    double s[kLaneWidth];
    _mm256_storeu_pd(s, acc);
    for (; c < cols; ++c) s[c & 3] = std::fma(row[c], x[c], s[c & 3]);
    y[r] = (s[0] + s[2]) + (s[1] + s[3]);
  }
}

__attribute__((target("avx2,fma"))) void panel_avx2(const PackedMatrix& m,
                                                    const double* x,
                                                    std::size_t width,
                                                    double* out) {
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (std::size_t k = 0; k < width; k += 4) {
      // One register per column class, each spanning four batch lanes:
      // lane arithmetic is the serial dot product, four runs at a time.
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      __m256d s2 = _mm256_setzero_pd();
      __m256d s3 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < cols; ++c) {
        const __m256d b = _mm256_set1_pd(row[c]);
        const __m256d v = _mm256_loadu_pd(x + c * width + k);
        switch (c & 3) {
          case 0: s0 = _mm256_fmadd_pd(b, v, s0); break;
          case 1: s1 = _mm256_fmadd_pd(b, v, s1); break;
          case 2: s2 = _mm256_fmadd_pd(b, v, s2); break;
          default: s3 = _mm256_fmadd_pd(b, v, s3); break;
        }
      }
      const __m256d sum =
          _mm256_add_pd(_mm256_add_pd(s0, s2), _mm256_add_pd(s1, s3));
      _mm256_storeu_pd(out + r * width + k, sum);
    }
  }
}

__attribute__((target("avx2,fma"))) double gather_dot_avx2(
    const double* vals, const std::int32_t* idx, std::size_t nnz,
    const double* x) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = 0;
  // The masked gather form with an all-ones mask: identical loads, but
  // unlike the plain intrinsic it has no undefined source operand for
  // -Wmaybe-uninitialized to complain about.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (; p + 4 <= nnz; p += 4) {
    const __m128i id =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + p));
    const __m256d xv =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, id, all, 8);
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(vals + p), xv, acc);
  }
  // Register lane j holds term class j (chunks start at p = 0); fold the
  // tail terms into their class with the same correctly rounded fma.
  double s[kLaneWidth];
  _mm256_storeu_pd(s, acc);
  for (; p < nnz; ++p) s[p & 3] = std::fma(vals[p], x[idx[p]], s[p & 3]);
  return (s[0] + s[2]) + (s[1] + s[3]);
}

__attribute__((target("avx2,fma"))) void panel_gather_dot_avx2(
    const double* vals, const std::int32_t* idx, std::size_t nnz,
    const double* x, std::size_t width, double* out) {
  for (std::size_t k = 0; k < width; k += 4) {
    // One register per term class, each spanning four batch lanes: lane
    // arithmetic is the serial gather_dot, four lanes at a time.
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < nnz; ++p) {
      const __m256d b = _mm256_set1_pd(vals[p]);
      const __m256d v =
          _mm256_loadu_pd(x + static_cast<std::size_t>(idx[p]) * width + k);
      switch (p & 3) {
        case 0: s0 = _mm256_fmadd_pd(b, v, s0); break;
        case 1: s1 = _mm256_fmadd_pd(b, v, s1); break;
        case 2: s2 = _mm256_fmadd_pd(b, v, s2); break;
        default: s3 = _mm256_fmadd_pd(b, v, s3); break;
      }
    }
    const __m256d sum =
        _mm256_add_pd(_mm256_add_pd(s0, s2), _mm256_add_pd(s1, s3));
    _mm256_storeu_pd(out + k, sum);
  }
}

bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // HYDRA_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend (AArch64 baseline — always available there). Two 2-lane
// registers stand in for the one 4-lane AVX2 register: [s0 s1] and
// [s2 s3]. vfmaq_f64 is a correctly rounded fma per lane, so the
// per-class arithmetic and the (s0+s2)+(s1+s3) reduction match the
// scalar reference bit for bit.

#if defined(HYDRA_SIMD_NEON)

void matvec_neon(const double* a, std::size_t rows, std::size_t cols,
                 const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a + r * cols;
    float64x2_t s01 = vdupq_n_f64(0.0);
    float64x2_t s23 = vdupq_n_f64(0.0);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      s01 = vfmaq_f64(s01, vld1q_f64(row + c), vld1q_f64(x + c));
      s23 = vfmaq_f64(s23, vld1q_f64(row + c + 2), vld1q_f64(x + c + 2));
    }
    double s[kLaneWidth];
    vst1q_f64(s, s01);
    vst1q_f64(s + 2, s23);
    for (; c < cols; ++c) s[c & 3] = std::fma(row[c], x[c], s[c & 3]);
    y[r] = (s[0] + s[2]) + (s[1] + s[3]);
  }
}

void panel_neon(const PackedMatrix& m, const double* x, std::size_t width,
                double* out) {
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (std::size_t k = 0; k < width; k += 2) {
      float64x2_t s0 = vdupq_n_f64(0.0);
      float64x2_t s1 = vdupq_n_f64(0.0);
      float64x2_t s2 = vdupq_n_f64(0.0);
      float64x2_t s3 = vdupq_n_f64(0.0);
      for (std::size_t c = 0; c < cols; ++c) {
        const float64x2_t v = vld1q_f64(x + c * width + k);
        switch (c & 3) {
          case 0: s0 = vfmaq_n_f64(s0, v, row[c]); break;
          case 1: s1 = vfmaq_n_f64(s1, v, row[c]); break;
          case 2: s2 = vfmaq_n_f64(s2, v, row[c]); break;
          default: s3 = vfmaq_n_f64(s3, v, row[c]); break;
        }
      }
      const float64x2_t sum =
          vaddq_f64(vaddq_f64(s0, s2), vaddq_f64(s1, s3));
      vst1q_f64(out + r * width + k, sum);
    }
  }
}

// AArch64 has no gather load, so the NEON gather_dot is the scalar
// class walk (vfma via std::fma is one instruction there); the panel
// variant still vectorises across batch lanes, which are contiguous.
void panel_gather_dot_neon(const double* vals, const std::int32_t* idx,
                           std::size_t nnz, const double* x,
                           std::size_t width, double* out) {
  for (std::size_t k = 0; k < width; k += 2) {
    float64x2_t s0 = vdupq_n_f64(0.0);
    float64x2_t s1 = vdupq_n_f64(0.0);
    float64x2_t s2 = vdupq_n_f64(0.0);
    float64x2_t s3 = vdupq_n_f64(0.0);
    for (std::size_t p = 0; p < nnz; ++p) {
      const float64x2_t v =
          vld1q_f64(x + static_cast<std::size_t>(idx[p]) * width + k);
      switch (p & 3) {
        case 0: s0 = vfmaq_n_f64(s0, v, vals[p]); break;
        case 1: s1 = vfmaq_n_f64(s1, v, vals[p]); break;
        case 2: s2 = vfmaq_n_f64(s2, v, vals[p]); break;
        default: s3 = vfmaq_n_f64(s3, v, vals[p]); break;
      }
    }
    const float64x2_t sum = vaddq_f64(vaddq_f64(s0, s2), vaddq_f64(s1, s3));
    vst1q_f64(out + k, sum);
  }
}

#endif  // HYDRA_SIMD_NEON

Backend detect_backend() {
#if defined(HYDRA_SIMD_NEON)
  return Backend::kNeon;
#elif defined(HYDRA_SIMD_X86)
  return cpu_has_avx2_fma() ? Backend::kAvx2 : Backend::kScalar;
#else
  return Backend::kScalar;
#endif
}

Backend sanitize(Backend b) {
  return backend_available(b) ? b : Backend::kScalar;
}

Backend resolve_startup_backend() {
  const char* env = std::getenv("HYDRA_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "avx2") == 0) return sanitize(Backend::kAvx2);
    if (std::strcmp(env, "neon") == 0) return sanitize(Backend::kNeon);
    return Backend::kScalar;  // unknown value: the safe, portable twin
  }
  return detect_backend();
}

std::atomic<Backend>& backend_slot() {
  static std::atomic<Backend> slot{resolve_startup_backend()};
  return slot;
}

}  // namespace

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(HYDRA_SIMD_X86)
      return cpu_has_avx2_fma();
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(HYDRA_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend active_backend() {
  return backend_slot().load(std::memory_order_relaxed);
}

void set_backend_for_test(Backend b) {
  backend_slot().store(sanitize(b), std::memory_order_relaxed);
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

PackedMatrix::PackedMatrix(std::size_t rows, std::size_t cols,
                           const double* row_major)
    : rows_(rows), cols_(cols), stride_(padded_size(cols)),
      data_(rows * stride_, 0.0) {
  for (std::size_t r = 0; r < rows; ++r) {
    std::memcpy(&data_[r * stride_], row_major + r * cols,
                cols * sizeof(double));
  }
}

void matvec(const double* a, std::size_t rows, std::size_t cols,
            const double* x, double* y) {
  switch (active_backend()) {
#if defined(HYDRA_SIMD_X86)
    case Backend::kAvx2:
      matvec_avx2(a, rows, cols, x, y);
      return;
#endif
#if defined(HYDRA_SIMD_NEON)
    case Backend::kNeon:
      matvec_neon(a, rows, cols, x, y);
      return;
#endif
    default:
      matvec_scalar(a, rows, cols, x, y);
      return;
  }
}

void packed_matvec(const PackedMatrix& m, const double* x, double* y) {
  // A packed row is an ordinary row of stride() columns whose padding
  // holds exact zeros: fma(0, 0, s) == s, so running the general kernel
  // over the padded width is bit-identical to the unpadded product —
  // and the vector backends never see a tail.
  matvec(m.rows() > 0 ? m.row(0) : nullptr, m.rows(), m.stride(), x, y);
}

void panel_matvec(const PackedMatrix& m, const double* x, std::size_t width,
                  double* out) {
  switch (active_backend()) {
#if defined(HYDRA_SIMD_X86)
    case Backend::kAvx2:
      panel_avx2(m, x, width, out);
      return;
#endif
#if defined(HYDRA_SIMD_NEON)
    case Backend::kNeon:
      panel_neon(m, x, width, out);
      return;
#endif
    default:
      panel_scalar(m, x, width, out);
      return;
  }
}

double gather_dot(const double* vals, const std::int32_t* idx,
                  std::size_t nnz, const double* x) {
  switch (active_backend()) {
#if defined(HYDRA_SIMD_X86)
    case Backend::kAvx2:
      return gather_dot_avx2(vals, idx, nnz, x);
#endif
    default:
      return gather_dot_scalar(vals, idx, nnz, x);
  }
}

void panel_gather_dot(const double* vals, const std::int32_t* idx,
                      std::size_t nnz, const double* x, std::size_t width,
                      double* out) {
  switch (active_backend()) {
#if defined(HYDRA_SIMD_X86)
    case Backend::kAvx2:
      panel_gather_dot_avx2(vals, idx, nnz, x, width, out);
      return;
#endif
#if defined(HYDRA_SIMD_NEON)
    case Backend::kNeon:
      panel_gather_dot_neon(vals, idx, nnz, x, width, out);
      return;
#endif
    default:
      panel_gather_dot_scalar(vals, idx, nnz, x, width, out);
      return;
  }
}

}  // namespace hydra::thermal::simd
