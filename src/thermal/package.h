// Thermal package parameters (paper Section 3).
#pragma once

namespace hydra::thermal {

/// Material and geometry constants of the die + package stack. Defaults
/// correspond to the paper's setup: 0.5 mm die, copper spreader and heat
/// sink as in the HotSpot work, and a low-cost 1.0 K/W sink-to-air
/// convection resistance chosen to push hot SPEC benchmarks into thermal
/// stress.
struct Package {
  // Silicon die.
  double die_thickness = 0.5e-3;         ///< [m]
  double k_silicon = 150.0;              ///< thermal conductivity [W/mK]
  double c_silicon = 1.75e6;             ///< volumetric heat capacity [J/m^3 K]

  // Thermal interface material between die and spreader.
  double tim_thickness = 20e-6;          ///< [m]
  double k_tim = 4.0;                    ///< [W/mK]

  // Copper heat spreader.
  double spreader_side = 3.0e-2;         ///< [m]
  double spreader_thickness = 1.0e-3;    ///< [m]
  double k_copper = 400.0;               ///< [W/mK]
  double c_copper = 3.55e6;              ///< [J/m^3 K]

  // Heat sink (aluminium base modelled; fins folded into r_convec).
  double sink_side = 6.0e-2;             ///< [m]
  double sink_thickness = 6.9e-3;        ///< [m]
  double k_sink = 240.0;                 ///< [W/mK]
  double c_sink = 2.42e6;                ///< [J/m^3 K]

  /// Equivalent sink-to-air convection resistance [K/W]. 1.0 is the
  /// paper's low-cost package; HotSpot's default desktop value is 0.8.
  double r_convec = 1.0;

  /// Ambient (inside-case) air temperature [deg C].
  double ambient_celsius = 45.0;
};

}  // namespace hydra::thermal
