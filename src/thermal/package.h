// Thermal package parameters (paper Section 3).
#pragma once

#include "util/units.h"

namespace hydra::thermal {

/// Material and geometry constants of the die + package stack. Defaults
/// correspond to the paper's setup: 0.5 mm die, copper spreader and heat
/// sink as in the HotSpot work, and a low-cost 1.0 K/W sink-to-air
/// convection resistance chosen to push hot SPEC benchmarks into thermal
/// stress. Geometry carries an explicit `_m` suffix; conductivities k_*
/// are [W/(m K)] and volumetric heat capacities c_* are [J/(m^3 K)] —
/// they feed raw resistance/capacitance formulas in package_builder.cc,
/// which wraps the results in strong types at the RcNetwork boundary.
struct Package {
  // Silicon die.
  double die_thickness_m = 0.5e-3;
  double k_silicon = 150.0;  ///< [W/(m K)]
  double c_silicon = 1.75e6;  ///< [J/(m^3 K)]

  // Thermal interface material between die and spreader.
  double tim_thickness_m = 20e-6;
  double k_tim = 4.0;  ///< [W/(m K)]

  // Copper heat spreader.
  double spreader_side_m = 3.0e-2;
  double spreader_thickness_m = 1.0e-3;
  double k_copper = 400.0;  ///< [W/(m K)]
  double c_copper = 3.55e6;  ///< [J/(m^3 K)]

  // Heat sink (aluminium base modelled; fins folded into r_convec).
  double sink_side_m = 6.0e-2;
  double sink_thickness_m = 6.9e-3;
  double k_sink = 240.0;  ///< [W/(m K)]
  double c_sink = 2.42e6;  ///< [J/(m^3 K)]

  /// Equivalent sink-to-air convection resistance. 1.0 K/W is the
  /// paper's low-cost package; HotSpot's default desktop value is 0.8.
  util::KelvinPerWatt r_convec{1.0};

  /// Ambient (inside-case) air temperature.
  util::Celsius ambient{45.0};
};

}  // namespace hydra::thermal
