// Sparse solve path for the thermal RC networks (DESIGN.md section 17).
//
// HotSpot-class RC networks are intrinsically sparse: a die block
// couples only to its lateral neighbours and its vertical package
// stack, so the conductance matrix G of an N-core die has O(n) nonzeros
// while the dense fused-BE operator is a full n x n inverse. This
// module provides the CSR matrix type, a sparse LDL^T (Cholesky)
// factorisation with a fill-reducing minimum-degree ordering, and the
// HYDRA_SPARSE dispatch policy that decides when the solver should
// factorise-once + substitute per step instead of running the dense
// fused two-matvec path.
//
// Why LDL^T applies: G is a weighted graph Laplacian plus a nonnegative
// ambient-tie diagonal, hence symmetric positive semidefinite, and the
// ambient ties make it strictly positive definite; the step matrix
// C/dt + G adds a strictly positive diagonal on top. SPD matrices admit
// A = L D L^T with unit-lower-triangular L and positive D — no pivoting
// needed, so the factor's sparsity is governed purely by the elimination
// order, which the minimum-degree preorder keeps near O(n) for these
// stencil-plus-star graphs.
//
// The triangular substitutions run on thermal::simd::gather_dot /
// panel_gather_dot, so the sparse path inherits the virtual-lane
// bit-identity contract: results are bit-identical across
// scalar/AVX2/NEON backends and between serial and batched (panel)
// solves. Solving is read-only and allocation-free (caller-provided
// scratch), so one factorisation serves many threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "thermal/linalg.h"

namespace hydra::thermal {

/// Compressed sparse row matrix. Column indices are int32 so the AVX2
/// gather kernels can consume them directly; thermal models are far
/// below 2^31 nodes.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;   ///< rows + 1 entries
  std::vector<std::int32_t> col_idx;  ///< ascending within each row
  std::vector<double> values;

  std::size_t nnz() const { return values.size(); }

  /// y = A x via one gather_dot per row. `y` must not alias `x`.
  void multiply_into(const double* x, double* y) const;

  /// Dense expansion — validation/tests only.
  Matrix to_dense() const;
};

/// Sparse LDL^T factorisation of a symmetric positive definite CSR
/// matrix: P A P^T = L D L^T with P a fill-reducing minimum-degree
/// permutation computed internally. Solving is thread-safe (the factor
/// is immutable) and allocation-free with caller-provided scratch.
class SparseCholesky {
 public:
  /// Factorise `a` (full symmetric CSR, both triangles present).
  /// Throws std::invalid_argument on a non-square input and
  /// std::runtime_error when a pivot is non-positive or non-finite
  /// (matrix not positive definite) — callers fall back to dense LU.
  explicit SparseCholesky(const CsrMatrix& a);

  std::size_t size() const { return n_; }
  /// Nonzeros in the strictly-lower factor L (fill-in metric).
  std::size_t factor_nnz() const { return lcol_row_.size(); }

  /// Solve A x = b. `b`, `x` and `work` are size() arrays; `work` is
  /// scratch and must not alias `b` (x may alias b). Arithmetic per
  /// element follows the simd virtual-lane contract, so the result is
  /// bit-identical across backends.
  void solve_into(const double* b, double* x, double* work) const;

  /// Panel solve for K lockstep lanes in column-major panels
  /// (element c of lane k at [c * width + k], width a multiple of
  /// simd::kLaneWidth). `work` is a size()*width panel, `row_tmp` holds
  /// `width` doubles. Lane k's arithmetic is exactly solve_into()'s
  /// operation sequence, so batched solves are bit-identical to serial.
  void panel_solve_into(const double* b, std::size_t width, double* x,
                        double* work, double* row_tmp) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::int32_t> perm_;   ///< new index -> old index
  // L stored twice: by rows (strictly lower; forward solve gathers
  // earlier solution entries) and by columns == rows of L^T (strictly
  // upper view; backward solve gathers later entries). Values agree;
  // both index lists ascend within a row, fixing the gather class walk.
  std::vector<std::size_t> lrow_ptr_;
  std::vector<std::int32_t> lrow_col_;
  std::vector<double> lrow_val_;
  std::vector<std::size_t> lcol_ptr_;
  std::vector<std::int32_t> lcol_row_;
  std::vector<double> lcol_val_;
  std::vector<double> d_;  ///< positive pivots of D
};

/// HYDRA_SPARSE dispatch policy: `auto` (default) switches to the
/// sparse path at the measured crossover node count, `on` forces it for
/// every model, `off` pins the dense fused path (the CI validation-twin
/// leg, mirroring HYDRA_SIMD=scalar). Unknown values read as auto.
enum class SparseMode { kAuto, kOn, kOff };

SparseMode sparse_mode();
const char* sparse_mode_name(SparseMode m);

/// Test seam: override the HYDRA_SPARSE resolution (sparse_test flips
/// modes inside one process to compare the paths).
void set_sparse_mode_for_test(SparseMode m);

/// Node count at or above which `auto` picks the sparse path. The
/// default is the empirical crossover from bench/micro_perf's
/// BM_ThermalFusedStep vs BM_SparseStep (see DESIGN.md section 17);
/// HYDRA_SPARSE_CROSSOVER overrides it.
std::size_t sparse_crossover_nodes();

/// Test seam: override the crossover (restored by passing 0 = re-read
/// the environment/default).
void set_sparse_crossover_for_test(std::size_t nodes);

/// The dispatch predicate the solver, batched stepper and multicore
/// init all consult: should a `nodes`-node model step sparsely?
bool use_sparse_step(std::size_t nodes);

}  // namespace hydra::thermal
