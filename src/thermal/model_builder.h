// Construct the HotSpot-style compact thermal model from a floorplan and
// package description (paper Figure 1).
//
// Node layout: one node per floorplan block (silicon), a heat-spreader
// centre node plus four edge nodes, and a heat-sink centre node plus four
// edge nodes. Lateral die resistances are derived from shared block edges;
// vertical resistances from the die / TIM / spreader / sink stack; the
// sink couples to ambient through the package's convection resistance
// distributed by area.
#pragma once

#include <array>
#include <cstddef>

#include "floorplan/floorplan.h"
#include "thermal/package.h"
#include "thermal/rc_network.h"

namespace hydra::thermal {

/// A built model: the RC network plus the node-index map.
struct ThermalModel {
  RcNetwork network;
  std::size_t num_blocks = 0;      ///< block node i corresponds to fp.block(i)
  std::size_t spreader_center = 0;
  std::array<std::size_t, 4> spreader_edge{};  ///< N, S, E, W
  std::size_t sink_center = 0;
  std::array<std::size_t, 4> sink_edge{};      ///< N, S, E, W

  /// Expand a per-block power vector to a full per-node vector (package
  /// nodes dissipate nothing).
  Vector expand_power(const Vector& block_power) const;

  /// expand_power into a caller-provided buffer (resized to the node
  /// count); the allocation-free hot-path variant.
  void expand_power_into(const Vector& block_power, Vector& full) const;
};

/// Build the model. Throws std::invalid_argument if the floorplan is
/// empty, overlapping, or does not tile its bounding box.
ThermalModel build_thermal_model(const floorplan::Floorplan& fp,
                                 const Package& pkg);

}  // namespace hydra::thermal
