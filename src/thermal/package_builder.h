// Shared construction of the spreader/sink/convection part of a thermal
// model (used by both the block-level and grid-level die models).
#pragma once

#include <array>
#include <cstddef>

#include "thermal/package.h"
#include "thermal/rc_network.h"

namespace hydra::thermal {

/// Node indices of the package stack added by attach_package_nodes.
struct PackageNodes {
  std::size_t spreader_center = 0;
  std::array<std::size_t, 4> spreader_edge{};  ///< N, S, E, W
  std::size_t sink_center = 0;
  std::array<std::size_t, 4> sink_edge{};      ///< N, S, E, W
};

/// Append spreader and sink nodes to `net` for a die of the given
/// dimensions, including spreader<->sink vertical paths, in-plate lateral
/// paths, and the convection tie to ambient. Die nodes must be connected
/// to `spreader_center` by the caller (each through half the die
/// thickness plus the TIM layer over its own footprint).
/// Throws std::invalid_argument if the package layers do not nest.
PackageNodes attach_package_nodes(RcNetwork& net, double die_width,
                                  double die_height, const Package& pkg);

/// Lateral resistance between a centre region of width `w_inner` and the
/// surrounding edge region of a plate (side `side`, thickness `t`,
/// conductivity `k`). Geometry parameters are raw metres / W/(m K);
/// the result re-enters the typed RcNetwork boundary.
util::KelvinPerWatt plate_lateral_resistance(double w_inner, double side,
                                             double t, double k);

/// Vertical die-node -> spreader-centre resistance for a die region of
/// area `area` [m^2] (half die conduction plus the TIM layer).
util::KelvinPerWatt die_to_spreader_resistance(double area,
                                               const Package& pkg);

}  // namespace hydra::thermal
