#include "thermal/linalg.h"

#include <cmath>
#include <stdexcept>

#include "thermal/simd.h"

namespace hydra::thermal {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void Matrix::multiply_into(const Vector& x, Vector& y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("matvec size mismatch: x does not match cols");
  }
  if (&x == &y) {
    throw std::invalid_argument("multiply_into: y must not alias x");
  }
  y.resize(rows_);
  simd::matvec(data_.data(), rows_, cols_, x.data(), y.data());
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LU requires a square matrix");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw std::runtime_error("singular matrix in LU factorisation");
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv_diag = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_diag;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

void LuFactorization::solve_into(const Vector& b, Vector& x) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("rhs size mismatch in LU solve");
  }
  x.resize(n);
  // Forward substitution with the permuted rhs.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
}

Vector solve_linear(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace hydra::thermal
