#include "thermal/model_builder.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "thermal/package_builder.h"

namespace hydra::thermal {
namespace {

using floorplan::Block;
using floorplan::Floorplan;

/// Lateral resistance between two adjacent blocks: series of the two
/// half-block conduction paths through the die, across the shared edge.
util::KelvinPerWatt lateral_resistance(const Block& a, const Block& b,
                                       double shared_len, bool vertical_edge,
                                       const Package& pkg) {
  // Heat travels perpendicular to the shared edge; the path length in each
  // block is half its extent in that direction.
  const double da = vertical_edge ? a.width / 2.0 : a.height / 2.0;
  const double db = vertical_edge ? b.width / 2.0 : b.height / 2.0;
  const double cross_section = pkg.k_silicon * pkg.die_thickness_m * shared_len;
  return util::KelvinPerWatt((da + db) / cross_section);
}

}  // namespace

Vector ThermalModel::expand_power(const Vector& block_power) const {
  Vector full;
  expand_power_into(block_power, full);
  return full;
}

void ThermalModel::expand_power_into(const Vector& block_power,
                                     Vector& full) const {
  if (block_power.size() != num_blocks) {
    throw std::invalid_argument("block power vector has wrong size");
  }
  full.assign(network.size(), 0.0);
  for (std::size_t i = 0; i < num_blocks; ++i) full[i] = block_power[i];
}

ThermalModel build_thermal_model(const Floorplan& fp, const Package& pkg) {
  if (fp.size() == 0) {
    throw std::invalid_argument("cannot build thermal model: empty floorplan");
  }
  if (!fp.covers_die(1e-6)) {
    throw std::invalid_argument(
        "cannot build thermal model: floorplan must tile its bounding box "
        "without overlaps");
  }

  ThermalModel model;
  RcNetwork& net = model.network;
  model.num_blocks = fp.size();

  // --- Die nodes -----------------------------------------------------
  for (const Block& b : fp.blocks()) {
    const util::JoulesPerKelvin cap(pkg.c_silicon * b.area() *
                                    pkg.die_thickness_m);
    net.add_node(std::string(b.name), cap);
  }

  // Lateral die resistances from shared edges.
  for (const auto& adj : fp.adjacencies(1e-9)) {
    const util::KelvinPerWatt r =
        lateral_resistance(fp.block(adj.a), fp.block(adj.b),
                           adj.shared_length, adj.vertical_edge, pkg);
    net.connect(adj.a, adj.b, r);
  }

  // --- Package ----------------------------------------------------------
  const PackageNodes nodes =
      attach_package_nodes(net, fp.die_width(), fp.die_height(), pkg);
  model.spreader_center = nodes.spreader_center;
  model.spreader_edge = nodes.spreader_edge;
  model.sink_center = nodes.sink_center;
  model.sink_edge = nodes.sink_edge;

  // Block -> spreader centre: half the die thickness plus the TIM layer,
  // each over the block's own footprint.
  for (std::size_t i = 0; i < fp.size(); ++i) {
    net.connect(i, model.spreader_center,
                die_to_spreader_resistance(fp.block(i).area(), pkg));
  }

  return model;
}

}  // namespace hydra::thermal
