// Steady-state and transient solvers for thermal RC networks.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "thermal/linalg.h"
#include "thermal/rc_network.h"

namespace hydra::thermal {

/// Absolute steady-state temperatures [deg C] for the given per-node power
/// vector [W] and ambient temperature [deg C]: T = ambient + G^{-1} P.
Vector steady_state(const RcNetwork& net, const Vector& power,
                    double ambient_celsius);

/// Integration scheme for the transient solver.
enum class Scheme {
  kBackwardEuler,  ///< unconditionally stable; LU cached per time step
  kRk4,            ///< explicit 4th-order; used for cross-validation
};

/// Time-stepping solver. Owns the current temperature state.
///
/// Backward Euler solves (C/dt + G) T' = (C/dt) T + P each step and caches
/// the factorisation per distinct dt (DVS transitions change the wall-clock
/// length of a 10k-cycle step, so a handful of distinct dts recur).
class TransientSolver {
 public:
  TransientSolver(const RcNetwork& net, double ambient_celsius,
                  Scheme scheme = Scheme::kBackwardEuler);

  /// Set all node temperatures [deg C].
  void set_temperatures(const Vector& celsius);
  /// Initialise to the steady state for `power`.
  void initialize_steady_state(const Vector& power);

  /// Advance by dt seconds with constant per-node power [W].
  void step(const Vector& power, double dt);

  /// Current absolute temperatures [deg C].
  const Vector& temperatures() const { return celsius_; }
  double temperature(std::size_t node) const { return celsius_[node]; }
  double ambient() const { return ambient_; }

 private:
  void step_backward_euler(const Vector& power, double dt);
  void step_rk4(const Vector& power, double dt);
  Vector derivative(const Vector& rise, const Vector& power) const;

  const RcNetwork* net_;
  double ambient_;
  Scheme scheme_;
  Matrix g_;
  Vector celsius_;
  // Cache of backward-Euler factorisations keyed by dt.
  std::map<double, std::unique_ptr<LuFactorization>> lu_cache_;
};

}  // namespace hydra::thermal
