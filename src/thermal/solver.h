// Steady-state and transient solvers for thermal RC networks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "thermal/linalg.h"
#include "thermal/rc_network.h"
#include "thermal/simd.h"
#include "thermal/sparse.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/units.h"

namespace hydra::thermal {

/// Absolute steady-state temperatures [deg C] for the given per-node power
/// vector [W] and ambient temperature: T = ambient + G^{-1} P. Bulk node
/// vectors stay raw doubles (the solver kernel boundary); scalars are
/// strongly typed.
Vector steady_state(const RcNetwork& net, const Vector& power,
                    util::Celsius ambient);

/// Same computation against a prebuilt factorisation of the conductance
/// matrix G (bit-identical to the overload above when `g_lu` was built
/// from `net.conductance_matrix()`).
Vector steady_state(const LuFactorization& g_lu, const Vector& power,
                    util::Celsius ambient);

/// Allocation-free variant: writes the solution into `out` (resized on
/// first use, reused afterwards). `out` must not alias `power`.
void steady_state_into(const LuFactorization& g_lu, const Vector& power,
                       util::Celsius ambient, Vector& out);

/// Sparse twin against a Cholesky factor of G (LuCache::steady_sparse).
/// `work` is solver scratch (resized on first use); neither `out` nor
/// `work` may alias `power`. Agrees with the dense overloads to
/// solver round-off (sparse_test bounds it).
void steady_state_into(const SparseCholesky& g_chol, const Vector& power,
                       util::Celsius ambient, Vector& out, Vector& work);

/// Integration scheme for the transient solver.
enum class Scheme {
  kBackwardEuler,  ///< unconditionally stable; LU cached per time step
  kFusedBE,        ///< backward Euler via a precomputed step operator:
                   ///< two contiguous matvecs per step instead of a
                   ///< pivoted forward/back substitution
  kRk4,            ///< explicit 4th-order; used for cross-validation
};

/// Precomputed backward-Euler step operator for one (rounded) dt. The
/// implicit update (C/dt + G) rise' = (C/dt) rise + P is solved once,
/// symbolically, by inverting the system matrix:
///   rise' = M rise + N P,   N = (C/dt + G)^{-1},  M = N diag(C/dt),
/// so each step is two dense row-major matvecs — contiguous, branch-free
/// and auto-vectorizable, where the LU substitution walk is neither.
/// Agrees with the LU path to solver round-off (validated to <= 1e-9 degC
/// over full runs by thermal_fastpath tests before kFusedBE became the
/// simulation default).
struct FusedStepOperator {
  Matrix m;  ///< multiplies the current temperature rise
  Matrix n;  ///< multiplies the power vector
  /// Padded-row packed twins of m and n (built alongside them in
  /// LuCache::fused): the per-step kernels and the batched panel
  /// stepper run on these so the inner loops are tail-free stride-1
  /// FMA. Values agree with m/n bit for bit; padding is exact zeros.
  simd::PackedMatrix pm;
  simd::PackedMatrix pn;
};

/// Sparse backward-Euler step state for one (rounded) dt: the LDL^T
/// factor of C/dt + G plus the C/dt diagonal that forms the right-hand
/// side. Each step is rhs = (C/dt) rise + P followed by one sparse
/// substitution — O(nnz(L)) where the fused path is O(n^2) — at the
/// cost of a sequential (not panel-free) dependency chain, which is why
/// small models keep the dense path (see sparse.h, use_sparse_step).
struct SparseStepOperator {
  SparseCholesky chol;
  Vector c_over_dt;

  SparseStepOperator(SparseCholesky&& c, Vector cd)
      : chol(std::move(c)), c_over_dt(std::move(cd)) {}
};

/// Round dt to 3 significant figures so DVS-induced variation in the
/// wall-clock length of a 10k-cycle interval maps onto a bounded set of
/// cached factorisations. The rounded dt is used for the integration
/// itself, keeping matrix and right-hand side consistent (sub-percent
/// step-length error, negligible against the ms-scale time constants).
/// Shared by both backward-Euler paths — and by the batched sweep
/// driver, which groups lockstep lanes by this exact value — so they
/// all key the same cache entries and integrate identical step lengths.
double round_step_dt(double dt);

/// Guard bound shared by the fused-BE step and the batched stepper: a
/// temperature rise beyond this is divergence, not physics (silicon
/// melts three orders of magnitude earlier). Deliberately loose so the
/// guard can never veto a legitimate transient.
inline constexpr double kMaxPlausibleRise = 1.0e6;

/// Thread-safe cache of the factorisations a thermal network needs:
/// the steady-state LU of G, one backward-Euler LU of (C/dt + G) per
/// distinct (rounded) time step, and one fused step operator per dt. One
/// instance can be shared by every System built over the same (package,
/// time_scale) — solving against a factorisation (or multiplying by a
/// fused operator) is read-only, so concurrent solvers are safe; only
/// the first builder of a given dt pays the construction cost.
class LuCache {
 public:
  explicit LuCache(const RcNetwork& net);

  std::size_t size() const { return capacitance_.size(); }

  /// Factorisation of G for steady-state solves.
  const LuFactorization& steady() const;

  /// Factorisation of (C/dt + G) for the given *already rounded* dt
  /// [s]. Raw double: this is below the typed boundary, keyed by the
  /// exact bit pattern the stepper rounded to.
  const LuFactorization& backward_euler(double dt) const;

  /// Fused step operator for the given *already rounded* dt [s]; built
  /// on first use from the same (C/dt + G) matrix as backward_euler().
  const FusedStepOperator& fused(double dt) const;

  /// Sparse LDL^T step operator for the given *already rounded* dt [s]:
  /// the factor of C/dt + G assembled in CSR (the dense matrix is never
  /// formed). Throws std::runtime_error if the factorisation fails —
  /// callers fall back to the dense LU path.
  const SparseStepOperator& sparse(double dt) const;

  /// Sparse Cholesky factor of G itself, for steady-state solves on the
  /// sparse path.
  const SparseCholesky& steady_sparse() const;

  /// The CSR assembly of G this cache factorises from (tests compare it
  /// to the dense conductance_matrix()).
  const CsrMatrix& conductance_csr() const { return g_csr_; }

 private:
  Matrix g_;
  CsrMatrix g_csr_;
  Vector capacitance_;
  /// Guards lazy construction only: the returned factorisations and
  /// operators are immutable once built, so callers solve against the
  /// references lock-free.
  mutable util::Mutex mu_;
  mutable std::unique_ptr<LuFactorization> steady_lu_ HYDRA_GUARDED_BY(mu_);
  mutable std::unique_ptr<SparseCholesky> steady_chol_ HYDRA_GUARDED_BY(mu_);
  mutable std::map<double, std::unique_ptr<LuFactorization>> be_cache_
      HYDRA_GUARDED_BY(mu_);
  mutable std::map<double, std::unique_ptr<FusedStepOperator>> fused_cache_
      HYDRA_GUARDED_BY(mu_);
  mutable std::map<double, std::unique_ptr<SparseStepOperator>> sparse_cache_
      HYDRA_GUARDED_BY(mu_);
};

/// Time-stepping solver. Owns the current temperature state.
///
/// Backward Euler solves (C/dt + G) T' = (C/dt) T + P each step and caches
/// the factorisation per distinct dt (DVS transitions change the wall-clock
/// length of a 10k-cycle step, so a handful of distinct dts recur). The
/// factorisations live in an LuCache that may be shared across solvers;
/// a per-solver memo of the last dt keeps the steady-state hot path free
/// of both locking and map lookups.
class TransientSolver {
 public:
  /// `lu_cache` may be shared across solvers over the same network; when
  /// null a private cache is created.
  TransientSolver(const RcNetwork& net, util::Celsius ambient,
                  Scheme scheme = Scheme::kBackwardEuler,
                  std::shared_ptr<const LuCache> lu_cache = nullptr);

  /// Set all node temperatures [deg C].
  void set_temperatures(const Vector& celsius);
  /// Initialise to the steady state for `power`.
  void initialize_steady_state(const Vector& power);

  /// Advance by `dt` with constant per-node power [W].
  void step(const Vector& power, util::Seconds dt);

  /// Current absolute temperatures [deg C].
  const Vector& temperatures() const { return celsius_; }
  util::Celsius temperature(std::size_t node) const {
    return util::Celsius(celsius_[node]);
  }
  util::Celsius ambient() const { return util::Celsius(ambient_); }

  /// Times the fast-path guard (fused or sparse) rejected a step
  /// (NaN/Inf or divergence) and fell back to the reference LU path.
  /// After the first trip the solver stays on LU for its lifetime — the
  /// step operator is suspect, and LU is the scheme it was validated
  /// against.
  std::uint64_t fused_guard_trips() const { return fused_guard_trips_; }

  /// Test seam: poison the next fast-path step's candidate update with
  /// a NaN, as a corrupted step operator would. The guard must catch
  /// it, fall back to LU within the same step, and keep the run's
  /// results identical to a pure-LU twin (recovery_test asserts this;
  /// sparse_test asserts the sparse-path twin).
  void inject_fused_fault_for_test() { inject_fused_fault_ = true; }

  /// True when Scheme::kFusedBE steps route through the sparse LDL^T
  /// substitution for this model size (sparse.h, use_sparse_step —
  /// resolved once at construction).
  bool sparse_path() const { return use_sparse_; }

 private:
  void step_backward_euler(const Vector& power, double dt);
  void step_fused_be(const Vector& power, double dt);
  void step_sparse_be(const Vector& power, double dt);
  void step_rk4(const Vector& power, double dt);
  void derivative_into(const Vector& rise, const Vector& power, Vector& d);

  const RcNetwork* net_;
  double ambient_;
  Scheme scheme_;
  Matrix g_;
  Vector celsius_;
  std::shared_ptr<const LuCache> lu_cache_;
  // Last-used factorisation memo: the common case is a constant dt, so
  // the per-step path touches neither the cache mutex nor the map.
  double last_dt_ = 0.0;
  const LuFactorization* last_lu_ = nullptr;
  double last_fused_dt_ = 0.0;
  const FusedStepOperator* last_fused_ = nullptr;
  double last_sparse_dt_ = 0.0;
  const SparseStepOperator* last_sparse_ = nullptr;
  /// kFusedBE routes through the sparse path for this model (decided
  /// once at construction from the HYDRA_SPARSE policy + node count).
  bool use_sparse_ = false;
  // Fast-path numerical guard state, shared by the fused and sparse
  // steps (see step_fused_be / step_sparse_be).
  std::uint64_t fused_guard_trips_ = 0;
  bool fused_disabled_ = false;
  bool inject_fused_fault_ = false;
  // Preallocated scratch so the per-step hot path never allocates.
  Vector rhs_;
  Vector rise_;
  Vector k1_, k2_, k3_, k4_, tmp_, flow_;
  // Padded inputs for the packed fused-BE kernels: sized to the packed
  // stride with the tail zeroed once, so the SIMD inner loop never
  // needs a tail pass (padding terms are exact fma no-ops).
  Vector rise_pad_, pow_pad_;
  // Substitution scratch for the sparse step/steady solves.
  Vector chol_work_;
};

}  // namespace hydra::thermal
