// Generic thermal RC network (paper Figure 1).
//
// Nodes carry a heat capacitance; edges carry thermal resistances; each
// node may additionally be tied to ambient through a resistance. Power
// sources inject heat at nodes. Temperatures are stored as *rises above
// ambient* internally; the public API works in absolute degrees Celsius.
//
// Dynamics:  C dT/dt = P - G T        (T = rise over ambient)
// Steady state:  T = G^{-1} P
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/linalg.h"
#include "thermal/sparse.h"
#include "util/units.h"

namespace hydra::thermal {

class RcNetwork {
 public:
  /// Add a node with the given heat capacitance and return its index.
  /// Capacitance must be positive for transient solves.
  std::size_t add_node(std::string name, util::JoulesPerKelvin capacitance);

  /// Connect nodes a and b through a thermal resistance.
  /// Resistances must be positive; parallel connections accumulate.
  void connect(std::size_t a, std::size_t b, util::KelvinPerWatt ohms);

  /// Connect node `a` to ambient through a thermal resistance.
  void connect_to_ambient(std::size_t a, util::KelvinPerWatt ohms);

  std::size_t size() const { return capacitance_.size(); }
  const std::string& node_name(std::size_t i) const { return names_[i]; }
  util::JoulesPerKelvin capacitance(std::size_t i) const {
    return util::JoulesPerKelvin(capacitance_[i]);
  }

  /// Divide all capacitances by `factor` (> 0). Used to accelerate
  /// simulated thermal time uniformly (see DESIGN.md, time_scale).
  void scale_capacitances(double inv_factor);

  /// Dense conductance matrix G (including ambient ties on the diagonal).
  Matrix conductance_matrix() const;

  /// Sparse CSR assembly of the same G, built straight from the edge
  /// list without ever materialising the dense matrix. Rows are sorted
  /// by column with parallel edges accumulated; every node gets a
  /// diagonal entry (its ambient tie plus incident edge conductances).
  /// Entry-for-entry equal to conductance_matrix() — sparse_test
  /// asserts it.
  CsrMatrix conductance_csr() const;

  /// Total conductance to ambient — for conservation checks.
  util::WattsPerKelvin total_ambient_conductance() const;

 private:
  struct Edge {
    std::size_t a;
    std::size_t b;
    double conductance_w_per_k;
  };

  std::vector<std::string> names_;
  std::vector<double> capacitance_;
  std::vector<double> ambient_conductance_;
  std::vector<Edge> edges_;
};

}  // namespace hydra::thermal
