#include "thermal/sparse.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>

#include "thermal/simd.h"

namespace hydra::thermal {

void CsrMatrix::multiply_into(const double* x, double* y) const {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t p0 = row_ptr[r];
    y[r] = simd::gather_dot(&values[p0], &col_idx[p0], row_ptr[r + 1] - p0, x);
  }
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      m(r, static_cast<std::size_t>(col_idx[p])) += values[p];
    }
  }
  return m;
}

namespace {

/// Greedy minimum-degree preorder of a symmetric sparsity pattern:
/// repeatedly eliminate the lowest-degree vertex (ties to the lowest
/// index, so the order is deterministic) and connect its surviving
/// neighbours into a clique — exactly the fill that elimination would
/// create. The RC graphs are a block stencil plus a package star; the
/// high-degree hub nodes (spreader/sink centres) naturally sort last,
/// which is what keeps fill near O(n). Factor-once cost; clarity over
/// the quotient-graph tricks of production AMD.
std::vector<std::int32_t> min_degree_order(const CsrMatrix& a) {
  const std::size_t n = a.rows;
  std::vector<std::set<std::int32_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      const std::int32_t c = a.col_idx[p];
      if (static_cast<std::size_t>(c) != r) {
        adj[r].insert(c);
      }
    }
  }
  std::vector<bool> alive(n, true);
  std::vector<std::int32_t> perm;
  perm.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v] && adj[v].size() < best_deg) {
        best = v;
        best_deg = adj[v].size();
      }
    }
    perm.push_back(static_cast<std::int32_t>(best));
    alive[best] = false;
    for (const std::int32_t u : adj[best]) {
      adj[static_cast<std::size_t>(u)].erase(static_cast<std::int32_t>(best));
    }
    for (const std::int32_t u : adj[best]) {
      for (const std::int32_t w : adj[best]) {
        if (u < w) {
          adj[static_cast<std::size_t>(u)].insert(w);
          adj[static_cast<std::size_t>(w)].insert(u);
        }
      }
    }
    adj[best].clear();
  }
  return perm;
}

}  // namespace

SparseCholesky::SparseCholesky(const CsrMatrix& a) : n_(a.rows) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("sparse Cholesky needs a square matrix");
  }
  const std::size_t n = n_;
  perm_ = min_degree_order(a);
  std::vector<std::int32_t> iperm(n);
  for (std::size_t k = 0; k < n; ++k) {
    iperm[static_cast<std::size_t>(perm_[k])] = static_cast<std::int32_t>(k);
  }

  // Permuted matrix App = P A P^T in CSR with sorted rows. Assembly-time
  // allocation only; the factor below is what the hot path reuses.
  std::vector<std::size_t> ap(n + 1, 0);
  std::vector<std::int32_t> ai(a.nnz());
  std::vector<double> ax(a.nnz());
  {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t o = static_cast<std::size_t>(perm_[k]);
      ap[k + 1] = ap[k] + (a.row_ptr[o + 1] - a.row_ptr[o]);
    }
    std::vector<std::size_t> fill(ap.begin(), ap.end() - 1);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t o = static_cast<std::size_t>(perm_[k]);
      for (std::size_t p = a.row_ptr[o]; p < a.row_ptr[o + 1]; ++p) {
        ai[fill[k]] = iperm[static_cast<std::size_t>(a.col_idx[p])];
        ax[fill[k]] = a.values[p];
        ++fill[k];
      }
      // Insertion sort by column; rows are short (stencil + star).
      for (std::size_t p = ap[k] + 1; p < ap[k + 1]; ++p) {
        const std::int32_t ci = ai[p];
        const double vi = ax[p];
        std::size_t q = p;
        while (q > ap[k] && ai[q - 1] > ci) {
          ai[q] = ai[q - 1];
          ax[q] = ax[q - 1];
          --q;
        }
        ai[q] = ci;
        ax[q] = vi;
      }
    }
  }

  // Symbolic pass (Davis's LDL): elimination tree + per-column counts
  // of L from the pattern of the lower triangle of App, row by row.
  std::vector<std::int32_t> parent(n, -1);
  std::vector<std::int32_t> flag(n);
  std::vector<std::size_t> lnz(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    parent[k] = -1;
    flag[k] = static_cast<std::int32_t>(k);
    for (std::size_t p = ap[k]; p < ap[k + 1]; ++p) {
      std::size_t i = static_cast<std::size_t>(ai[p]);
      if (i < k) {
        for (; flag[i] != static_cast<std::int32_t>(k);
             i = static_cast<std::size_t>(parent[i])) {
          if (parent[i] == -1) parent[i] = static_cast<std::int32_t>(k);
          ++lnz[i];
          flag[i] = static_cast<std::int32_t>(k);
        }
      }
    }
  }
  lcol_ptr_.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) lcol_ptr_[k + 1] = lcol_ptr_[k] + lnz[k];
  lcol_row_.resize(lcol_ptr_[n]);
  lcol_val_.resize(lcol_ptr_[n]);
  d_.resize(n);

  // Up-looking numeric factorisation: row k of L is the sparse
  // triangular solve L(0:k,0:k) y = App(k, 0:k), with the pattern read
  // off the elimination tree. Columns of L fill in ascending row order,
  // so lcol_* doubles as the row-compressed form of L^T.
  std::vector<double> y(n, 0.0);
  std::vector<std::int32_t> pattern(n);
  std::vector<std::size_t> lfill(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t top = n;
    flag[k] = static_cast<std::int32_t>(k);
    for (std::size_t p = ap[k]; p < ap[k + 1]; ++p) {
      std::size_t i = static_cast<std::size_t>(ai[p]);
      if (i <= k) {
        y[i] += ax[p];
        std::size_t len = 0;
        for (; flag[i] != static_cast<std::int32_t>(k);
             i = static_cast<std::size_t>(parent[i])) {
          pattern[len++] = static_cast<std::int32_t>(i);
          flag[i] = static_cast<std::int32_t>(k);
        }
        while (len > 0) pattern[--top] = pattern[--len];
      }
    }
    double dk = y[k];
    y[k] = 0.0;
    for (; top < n; ++top) {
      const std::size_t i = static_cast<std::size_t>(pattern[top]);
      const double yi = y[i];
      y[i] = 0.0;
      const std::size_t p2 = lcol_ptr_[i] + lfill[i];
      for (std::size_t p = lcol_ptr_[i]; p < p2; ++p) {
        y[static_cast<std::size_t>(lcol_row_[p])] -= lcol_val_[p] * yi;
      }
      const double l_ki = yi / d_[i];
      dk -= l_ki * yi;
      lcol_row_[p2] = static_cast<std::int32_t>(k);
      lcol_val_[p2] = l_ki;
      ++lfill[i];
    }
    if (!(dk > 0.0) || !std::isfinite(dk)) {
      throw std::runtime_error("sparse Cholesky: matrix is not positive "
                               "definite (pivot " + std::to_string(k) + ")");
    }
    d_[k] = dk;
  }

  // Row-compressed L for the forward solve: transpose of the
  // column-compressed factor. Walking columns in ascending order
  // appends each row's entries in ascending column order.
  lrow_ptr_.assign(n + 1, 0);
  for (const std::int32_t r : lcol_row_) {
    ++lrow_ptr_[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t r = 0; r < n; ++r) lrow_ptr_[r + 1] += lrow_ptr_[r];
  lrow_col_.resize(lcol_row_.size());
  lrow_val_.resize(lcol_row_.size());
  std::vector<std::size_t> fill(lrow_ptr_.begin(), lrow_ptr_.end() - 1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = lcol_ptr_[j]; p < lcol_ptr_[j + 1]; ++p) {
      const std::size_t r = static_cast<std::size_t>(lcol_row_[p]);
      lrow_col_[fill[r]] = static_cast<std::int32_t>(j);
      lrow_val_[fill[r]] = lcol_val_[p];
      ++fill[r];
    }
  }
}

void SparseCholesky::solve_into(const double* b, double* x,
                                double* work) const {
  const std::size_t n = n_;
  // x = P^T (L^T \ (D^{-1} (L \ (P b)))), all in `work`.
  for (std::size_t i = 0; i < n; ++i) {
    work[i] = b[static_cast<std::size_t>(perm_[i])];
  }
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t p0 = lrow_ptr_[r];
    work[r] -= simd::gather_dot(&lrow_val_[p0], &lrow_col_[p0],
                                lrow_ptr_[r + 1] - p0, work);
  }
  for (std::size_t i = 0; i < n; ++i) work[i] /= d_[i];
  for (std::size_t r = n; r-- > 0;) {
    const std::size_t p0 = lcol_ptr_[r];
    work[r] -= simd::gather_dot(&lcol_val_[p0], &lcol_row_[p0],
                                lcol_ptr_[r + 1] - p0, work);
  }
  for (std::size_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(perm_[i])] = work[i];
  }
}

void SparseCholesky::panel_solve_into(const double* b, std::size_t width,
                                      double* x, double* work,
                                      double* row_tmp) const {
  const std::size_t n = n_;
  // Per-lane arithmetic mirrors solve_into() op for op: permute,
  // forward-substitute with a gather dot per row, scale by D, backward-
  // substitute, unpermute — panel_gather_dot guarantees each lane runs
  // the serial gather class walk.
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = b + static_cast<std::size_t>(perm_[i]) * width;
    double* dst = work + i * width;
    for (std::size_t k = 0; k < width; ++k) dst[k] = src[k];
  }
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t p0 = lrow_ptr_[r];
    simd::panel_gather_dot(&lrow_val_[p0], &lrow_col_[p0],
                           lrow_ptr_[r + 1] - p0, work, width, row_tmp);
    double* wr = work + r * width;
    for (std::size_t k = 0; k < width; ++k) wr[k] -= row_tmp[k];
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* wi = work + i * width;
    const double di = d_[i];
    for (std::size_t k = 0; k < width; ++k) wi[k] /= di;
  }
  for (std::size_t r = n; r-- > 0;) {
    const std::size_t p0 = lcol_ptr_[r];
    simd::panel_gather_dot(&lcol_val_[p0], &lcol_row_[p0],
                           lcol_ptr_[r + 1] - p0, work, width, row_tmp);
    double* wr = work + r * width;
    for (std::size_t k = 0; k < width; ++k) wr[k] -= row_tmp[k];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = work + i * width;
    double* dst = x + static_cast<std::size_t>(perm_[i]) * width;
    for (std::size_t k = 0; k < width; ++k) dst[k] = src[k];
  }
}

namespace {

/// Empirical dense/sparse crossover (see DESIGN.md section 17): at the
/// single-core model size (28 nodes) the dense fused two-matvec step
/// still wins; from the 4-core die (82 nodes) up the sparse
/// substitution is ahead and the gap widens superlinearly.
constexpr std::size_t kDefaultSparseCrossoverNodes = 64;

SparseMode resolve_startup_mode() {
  const char* env = std::getenv("HYDRA_SPARSE");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "on") == 0) return SparseMode::kOn;
    if (std::strcmp(env, "off") == 0) return SparseMode::kOff;
  }
  return SparseMode::kAuto;
}

std::atomic<SparseMode>& mode_slot() {
  static std::atomic<SparseMode> slot{resolve_startup_mode()};
  return slot;
}

std::size_t resolve_startup_crossover() {
  const char* env = std::getenv("HYDRA_SPARSE_CROSSOVER");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return kDefaultSparseCrossoverNodes;
}

std::atomic<std::size_t>& crossover_slot() {
  static std::atomic<std::size_t> slot{resolve_startup_crossover()};
  return slot;
}

}  // namespace

SparseMode sparse_mode() {
  return mode_slot().load(std::memory_order_relaxed);
}

void set_sparse_mode_for_test(SparseMode m) {
  mode_slot().store(m, std::memory_order_relaxed);
}

const char* sparse_mode_name(SparseMode m) {
  switch (m) {
    case SparseMode::kAuto:
      return "auto";
    case SparseMode::kOn:
      return "on";
    case SparseMode::kOff:
      return "off";
  }
  return "?";
}

std::size_t sparse_crossover_nodes() {
  return crossover_slot().load(std::memory_order_relaxed);
}

void set_sparse_crossover_for_test(std::size_t nodes) {
  crossover_slot().store(nodes == 0 ? resolve_startup_crossover() : nodes,
                         std::memory_order_relaxed);
}

bool use_sparse_step(std::size_t nodes) {
  switch (sparse_mode()) {
    case SparseMode::kOff:
      return false;
    case SparseMode::kOn:
      return nodes > 0;
    case SparseMode::kAuto:
      return nodes >= sparse_crossover_nodes();
  }
  return false;
}

}  // namespace hydra::thermal
