// Structure-of-arrays state for stepping K independent thermal runs in
// lockstep through one shared FusedStepOperator.
//
// The fused backward-Euler step is two dense matvecs (rise' = M rise +
// N P). When K runs share the same operator — sweep points over one
// (package, dt) model-cache entry — the K matvecs become one mat-panel
// product: a single pass over M and N amortised across K right-hand
// sides held as column-major lanes. Lane arithmetic follows the
// virtual-lane contract (thermal/simd.h): each lane computes exactly
// the serial kernel's operation sequence on its own column, so a
// batched run's temperatures are bit-identical to its serial twin
// regardless of batch width or which other runs share the panel.
#pragma once

#include <cstddef>
#include <vector>

#include "thermal/simd.h"
#include "thermal/solver.h"

namespace hydra::thermal {

class BatchedThermalState {
 public:
  /// Panels for `nodes`-node models and up to `width` lanes (width is
  /// padded up to the SIMD lane multiple internally; unused lanes stay
  /// zero, which the kernels treat as exact no-ops).
  BatchedThermalState(std::size_t nodes, std::size_t width);

  std::size_t nodes() const { return nodes_; }
  std::size_t width() const { return width_; }

  /// Stage lane `k`'s inputs: temperature rise over ambient and
  /// per-node power, `nodes()` entries each.
  void load_lane(std::size_t k, const double* rise, const double* power);

  /// rise' = M rise + N P for every staged lane in one panel pass.
  /// The operator's packed matrices must be `nodes()`-square.
  void step(const FusedStepOperator& op);

  /// Sparse twin: rhs = (C/dt) rise + P per lane, then one LDL^T panel
  /// substitution (SparseCholesky::panel_solve_into). Lane arithmetic
  /// is exactly the serial step_sparse_be sequence, so batched sparse
  /// runs stay bit-identical to serial sparse runs.
  void step(const SparseStepOperator& op);

  /// Copy lane `k`'s updated rise (after step) into `rise_out`.
  void store_lane(std::size_t k, double* rise_out) const;

 private:
  std::size_t nodes_ = 0;
  std::size_t width_ = 0;    ///< caller-visible lane count
  std::size_t stride_ = 0;   ///< width padded to the SIMD lane multiple
  // Column-major panels: element c of lane k lives at [c * stride_ + k].
  std::vector<double> rise_panel_;
  std::vector<double> power_panel_;
  std::vector<double> out_m_;  ///< M * rise panel, then the summed result
  std::vector<double> out_n_;  ///< N * P panel (sparse path: rhs panel)
  std::vector<double> work_panel_;  ///< sparse substitution scratch
  std::vector<double> lane_tmp_;    ///< one gather-dot row across lanes
};

}  // namespace hydra::thermal
