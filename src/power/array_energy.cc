#include "power/array_energy.h"

#include <cmath>
#include <stdexcept>

namespace hydra::power {
namespace {

/// Wordline + bitline energy common to reads and writes.
double wire_energy(const ArrayGeometry& g, const ArrayTechnology& tech,
                   double bitline_swing_fraction) {
  if (g.rows == 0 || g.cols == 0 || g.read_ports + g.write_ports == 0) {
    throw std::invalid_argument("array geometry must be non-degenerate");
  }
  const double ports = static_cast<double>(g.read_ports + g.write_ports);
  // Cell pitch grows with ports (extra wordlines/bitlines per cell).
  const double pitch =
      tech.cell_pitch * (1.0 + tech.port_pitch_factor * (ports - 1.0));

  // Wordline: spans all columns; drives one access gate per column.
  const double wl_length = static_cast<double>(g.cols) * pitch;
  const double wl_cap = wl_length * tech.wire_cap_per_m +
                        static_cast<double>(g.cols) * tech.cell_gate_cap;
  const double e_wordline = wl_cap * tech.vdd * tech.vdd;

  // Bitlines: one per column, spanning all rows; a drain cap per row.
  const double bl_length = static_cast<double>(g.rows) * pitch;
  const double bl_cap = bl_length * tech.wire_cap_per_m +
                        static_cast<double>(g.rows) * tech.cell_drain_cap;
  const double e_bitlines = static_cast<double>(g.cols) * bl_cap *
                            tech.vdd * tech.vdd * bitline_swing_fraction;

  return e_wordline + e_bitlines;
}

double decoder_energy(const ArrayGeometry& g, const ArrayTechnology& tech) {
  const double addr_bits =
      std::max(1.0, std::log2(static_cast<double>(g.rows)));
  return addr_bits * tech.decoder_energy_per_bit;
}

}  // namespace

util::Joules array_read_energy(const ArrayGeometry& g,
                               const ArrayTechnology& tech) {
  // Reads use a limited bitline swing terminated by sense amps.
  const double e = decoder_energy(g, tech) +
                   wire_energy(g, tech, /*bitline_swing_fraction=*/0.15) +
                   static_cast<double>(g.cols) * tech.sense_amp_energy_j +
                   static_cast<double>(g.cols) * tech.driver_energy_per_bit;
  return util::Joules(e);
}

util::Joules array_write_energy(const ArrayGeometry& g,
                                const ArrayTechnology& tech) {
  // Writes drive full-swing bitlines; no sensing.
  return util::Joules(decoder_energy(g, tech) +
                      wire_energy(g, tech, /*bitline_swing_fraction=*/1.0));
}

util::Watts array_peak_power(const ArrayGeometry& g, util::Hertz frequency,
                             const ArrayTechnology& tech) {
  if (frequency.value() <= 0.0) {
    throw std::invalid_argument("frequency must be positive");
  }
  // energy per cycle [J] * cycles per second [1/s] -> watts.
  const util::Joules per_cycle =
      static_cast<double>(g.read_ports) * array_read_energy(g, tech) +
      static_cast<double>(g.write_ports) * array_write_energy(g, tech);
  return per_cycle * frequency;
}

ArrayGeometry int_register_file_geometry() {
  // 21264-class: 80 physical integer registers, 64-bit, heavily ported
  // (two clusters of 4R/2W in the real chip; modelled flat here).
  return {80, 64, 8, 4};
}

ArrayGeometry fp_register_file_geometry() { return {72, 64, 4, 2}; }

ArrayGeometry icache_geometry() {
  // 64 KB banked into subarrays; one 256-row x 128-col subarray is
  // active per access (CACTI-style banking).
  return {256, 128, 1, 1};
}

ArrayGeometry dcache_geometry() { return {256, 128, 2, 1}; }

ArrayGeometry bpred_geometry() {
  // 8K 2-bit counters organised 256 x 64.
  return {256, 64, 1, 1};
}

}  // namespace hydra::power
