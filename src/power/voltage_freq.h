// Voltage -> frequency relation and DVS operating points.
//
// The paper derives the f(V) curve by simulating a 101-stage ring
// oscillator in Cadence with BSIM 100 nm models. We reproduce the same
// curve shape with the alpha-power-law MOSFET delay model
//     f(V)  proportional to  (V - Vth)^alpha / V
// normalised so f(Vnom) = f_nom, which matches ring-oscillator behaviour
// closely in the 0.13 um regime (delay grows super-linearly as V
// approaches Vth). See DESIGN.md "Substitutions".
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace hydra::power {

/// The alpha-power-law frequency model.
class VoltageFrequencyCurve {
 public:
  /// Defaults: paper's nominal point 1.3 V @ 3 GHz, Vth = 0.35 V,
  /// alpha = 1.3 (velocity-saturated short-channel devices).
  VoltageFrequencyCurve(util::Volts v_nominal = util::Volts(1.3),
                        util::Hertz f_nominal = util::Hertz(3.0e9),
                        util::Volts v_threshold = util::Volts(0.35),
                        double alpha = 1.3);

  util::Volts v_nominal() const { return util::Volts(v_nominal_); }
  util::Hertz f_nominal() const { return util::Hertz(f_nominal_); }

  /// Maximum safe clock frequency at supply voltage `v`. Requires
  /// v > Vth.
  util::Hertz frequency(util::Volts v) const;

 private:
  double v_nominal_;
  double f_nominal_;
  double v_threshold_;
  double alpha_;
  double norm_;  // precomputed so frequency(v_nominal_) == f_nominal_
};

/// One DVS setting.
struct OperatingPoint {
  util::Volts voltage{};
  util::Hertz frequency{};
};

/// A discrete DVS ladder. Index 0 is the *nominal* (fastest) point and
/// higher indices are progressively lower voltage; the last index is the
/// low-voltage setting. `steps == 2` gives the paper's binary DVS.
class DvsLadder {
 public:
  /// Build `steps >= 2` points with voltages linearly spaced between
  /// v_low_fraction * Vnom (last index) and Vnom (index 0).
  DvsLadder(const VoltageFrequencyCurve& curve, std::size_t steps,
            double v_low_fraction);

  /// "Continuous" DVS approximated with a dense ladder (64 points).
  static DvsLadder continuous(const VoltageFrequencyCurve& curve,
                              double v_low_fraction);

  std::size_t size() const { return points_.size(); }
  const OperatingPoint& point(std::size_t level) const {
    return points_[level];
  }
  std::size_t lowest_level() const { return points_.size() - 1; }

  /// Highest-voltage level whose voltage is <= `v` (conservative
  /// quantisation used when a controller asks for voltage `v`);
  /// returns lowest_level() when `v` is below every point.
  std::size_t level_at_or_below(util::Volts v) const;

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace hydra::power
