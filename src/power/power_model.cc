#include "power/power_model.h"

#include <stdexcept>

namespace hydra::power {

PowerModel::PowerModel(const floorplan::Floorplan& fp, EnergyModel energy)
    : energy_(std::move(energy)), leakage_(fp) {}

std::vector<double> PowerModel::block_power(
    const arch::ActivityFrame& frame, util::Volts voltage,
    util::Hertz frequency, const std::vector<double>& celsius) const {
  std::vector<double> watts;
  block_power_into(frame, voltage, frequency, celsius, watts);
  return watts;
}

void PowerModel::block_power_into(const arch::ActivityFrame& frame,
                                  util::Volts voltage, util::Hertz frequency,
                                  const std::vector<double>& celsius,
                                  std::vector<double>& watts) const {
  if (celsius.size() < floorplan::kNumBlocks) {
    throw std::invalid_argument("temperature vector too short");
  }
  watts.resize(floorplan::kNumBlocks);
  // Leakage for all blocks in one batch (the voltage scale and exp-chain
  // constants are hoisted there), then the dynamic term is added on top.
  // a + b is commutative in IEEE arithmetic, so the result is bit-equal
  // to the old per-block (dynamic + leakage) sum.
  leakage_.power_into(celsius, voltage, watts);
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    const auto id = static_cast<floorplan::BlockId>(i);
    watts[i] += energy_.dynamic_power(frame, id, voltage, frequency).value();
  }
}

util::Watts PowerModel::total_power(const arch::ActivityFrame& frame,
                                    util::Volts voltage, util::Hertz frequency,
                                    const std::vector<double>& celsius) const {
  double total = 0.0;
  for (double w : block_power(frame, voltage, frequency, celsius)) {
    total += w;
  }
  return util::Watts(total);
}

}  // namespace hydra::power
