// Temperature-dependent leakage model.
//
// The paper updates Wattch's leakage model so leakage is a function of
// temperature using ITRS 0.13 um projections. We use the standard
// empirical exponential form
//     P_leak = rho * A * (V / Vnom) * exp(beta * (T - T0))
// where rho is an areal leakage density at the reference temperature T0.
// beta = 0.017 / K doubles leakage roughly every 40 K, consistent with
// subthreshold behaviour at the 0.13 um node. SRAM-dominated blocks use a
// lower density than hot logic.
#pragma once

#include <array>
#include <vector>

#include "floorplan/block.h"
#include "floorplan/floorplan.h"
#include "util/units.h"

namespace hydra::power {

class LeakageModel {
 public:
  /// `fp` supplies per-block areas; densities use defaults below.
  explicit LeakageModel(const floorplan::Floorplan& fp);

  /// Leakage power of block `id` at temperature `celsius` [deg C] (raw
  /// double: values come straight out of the bulk thermal-node vector)
  /// and supply `voltage`.
  util::Watts power(floorplan::BlockId id, double celsius,
                    util::Volts voltage) const;

  /// Batch evaluation for the thermal-step hot path: writes the leakage
  /// of every block into `out[0..kNumBlocks)` (`out` must already hold
  /// at least kNumBlocks entries; entries beyond are untouched). The
  /// voltage-scale division and the beta/T0 loads are hoisted out of the
  /// per-block std::exp chain; each element matches power() bit for bit.
  void power_into(const std::vector<double>& celsius, util::Volts voltage,
                  std::vector<double>& out) const;

  util::Celsius reference_temperature() const {
    return util::Celsius(t0_celsius_);
  }
  util::Volts v_nominal() const { return util::Volts(v_nominal_); }

 private:
  std::array<double, floorplan::kNumBlocks> base_watts_{};  ///< at T0, Vnom
  double t0_celsius_ = 60.0;
  double beta_per_kelvin_ = 0.017;
  double v_nominal_ = 1.3;
};

}  // namespace hydra::power
