#include "power/leakage.h"

#include <cmath>
#include <stdexcept>

namespace hydra::power {

using floorplan::BlockId;

namespace {

/// True for the SRAM-array blocks (caches), which leak less per area than
/// hot logic thanks to higher-Vth cells.
bool is_sram(BlockId id) {
  switch (id) {
    case BlockId::kL2Left:
    case BlockId::kL2:
    case BlockId::kL2Right:
    case BlockId::kICache:
    case BlockId::kDCache:
      return true;
    default:
      return false;
  }
}

// Areal leakage densities at T0 = 60 C, Vnom [W/m^2].
constexpr double kLogicDensity = 4.0e4;  // 0.04 W/mm^2
constexpr double kSramDensity = 1.2e4;   // 0.012 W/mm^2

}  // namespace

LeakageModel::LeakageModel(const floorplan::Floorplan& fp) {
  if (fp.size() != floorplan::kNumBlocks) {
    throw std::invalid_argument(
        "LeakageModel expects the full EV7-like floorplan");
  }
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    const auto id = static_cast<BlockId>(i);
    const double density = is_sram(id) ? kSramDensity : kLogicDensity;
    base_watts_[i] = density * fp.block(i).area();
  }
}

util::Watts LeakageModel::power(BlockId id, double celsius,
                                util::Volts voltage) const {
  const double base = base_watts_[static_cast<std::size_t>(id)];
  const double v_scale = voltage.value() / v_nominal_;
  return util::Watts(base * v_scale *
                     std::exp(beta_per_kelvin_ * (celsius - t0_celsius_)));
}

void LeakageModel::power_into(const std::vector<double>& celsius,
                              util::Volts voltage,
                              std::vector<double>& out) const {
  if (celsius.size() < floorplan::kNumBlocks ||
      out.size() < floorplan::kNumBlocks) {
    throw std::invalid_argument("leakage batch vectors too short");
  }
  // Same expression as power(), element for element, so the batch path
  // is bit-identical; only the loop-invariant pieces are hoisted.
  const double v_scale = voltage.value() / v_nominal_;
  const double beta = beta_per_kelvin_;
  const double t0 = t0_celsius_;
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    out[i] = base_watts_[i] * v_scale * std::exp(beta * (celsius[i] - t0));
  }
}

}  // namespace hydra::power
