#include "power/energy_model.h"

#include <algorithm>

namespace hydra::power {

using floorplan::BlockId;

EnergyModel::EnergyModel() {
  auto set = [this](BlockId id, double peak, double base, double max_rate) {
    specs_[static_cast<std::size_t>(id)] = {peak, base, max_rate};
  };
  // Calibration (see DESIGN.md): peaks chosen so the nine hot SPEC2000
  // profiles reach 85-88 C on the 1.0 K/W package with the integer
  // register file as the densest (hottest) unit, leaving DTM enough
  // silicon-gradient headroom to regulate back below 85 C in-run.
  // peak [W]    base  max events/cycle
  set(BlockId::kL2Left, 1.879, 0.08, 0.125);
  set(BlockId::kL2, 5.009, 0.08, 0.25);
  set(BlockId::kL2Right, 1.879, 0.08, 0.125);
  set(BlockId::kICache, 5.634, 0.10, 1.0);
  set(BlockId::kDCache, 6.887, 0.10, 2.0);
  set(BlockId::kBPred, 3.130, 0.10, 1.0);
  set(BlockId::kDTB, 1.565, 0.10, 2.0);
  set(BlockId::kFPAdd, 3.130, 0.15, 2.0);
  set(BlockId::kFPReg, 3.130, 0.15, 4.0);
  set(BlockId::kFPMul, 3.130, 0.15, 1.0);
  set(BlockId::kFPMap, 1.879, 0.15, 4.0);
  set(BlockId::kIntMap, 3.130, 0.20, 4.0);
  set(BlockId::kIntQ, 2.818, 0.20, 4.0);
  set(BlockId::kIntReg, 7.513, 0.20, 8.0);
  set(BlockId::kIntExec, 6.261, 0.20, 4.0);
  set(BlockId::kFPQ, 1.565, 0.15, 2.0);
  set(BlockId::kLdStQ, 2.191, 0.15, 2.0);
  set(BlockId::kITB, 1.252, 0.10, 1.0);
}

double EnergyModel::utilization(const arch::ActivityFrame& frame,
                                BlockId id) const {
  if (frame.clocked_cycles <= 0.0) return 0.0;
  const BlockEnergySpec& s = specs_[static_cast<std::size_t>(id)];
  const double util =
      frame.count(id) / (frame.clocked_cycles * s.max_events_per_cycle);
  return std::clamp(util, 0.0, 1.0);
}

util::Watts EnergyModel::dynamic_power(const arch::ActivityFrame& frame,
                                       BlockId id, util::Volts voltage,
                                       util::Hertz frequency) const {
  if (frame.cycles <= 0.0) return util::Watts(0.0);
  const BlockEnergySpec& s = specs_[static_cast<std::size_t>(id)];
  const double util = utilization(frame, id);
  const double v_ratio = voltage.value() / v_nominal_;
  const double v_scale = v_ratio * v_ratio;
  const double f_scale = frequency.value() / f_nominal_;
  const double clocked_share = frame.clocked_cycles / frame.cycles;
  const double activity = s.base_fraction + (1.0 - s.base_fraction) * util;
  return util::Watts(s.peak_watts * activity * v_scale * f_scale *
                     clocked_share);
}

util::Watts EnergyModel::total_peak_watts() const {
  double total = 0.0;
  for (const auto& s : specs_) total += s.peak_watts;
  return util::Watts(total);
}

}  // namespace hydra::power
