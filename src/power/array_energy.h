// First-principles per-access energy for array structures (CACTI-style,
// heavily simplified) — the derivation behind Wattch-class power models.
//
// Wattch derives per-access energies of caches, register files, queues
// and predictors from their geometry (rows x cols x ports) using
// capacitance estimates for decoders, wordlines, bitlines and sense
// amps. This module reimplements that chain with 0.13 um technology
// constants, both to document where the EnergyModel calibration comes
// from and to let users derive specs for alternative configurations
// (bigger register files, different cache organisations).
//
//   E_access ~= E_decode + E_wordline + E_bitline + E_senseamp + E_drive
//
// Absolute values carry large uncertainty (as they do in Wattch); the
// model's value is in *relative* scaling: energy grows with rows, cols
// and ports in the right proportions (verified by tests). Two known
// omissions, shared with simple CACTI models: the bypass network and
// per-structure clock load, which dominate heavily-ported register
// files in practice — Wattch adds separate clock/result-bus components
// for exactly this reason, and EnergyModel's calibrated table folds
// them into the per-block peaks.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace hydra::power {

/// 0.13 um technology constants used by the energy equations.
struct ArrayTechnology {
  double vdd = 1.3;                 ///< [V]
  double wire_cap_per_m = 240e-12;  ///< wordline/bitline wire [F/m]
  double cell_gate_cap = 1.4e-15;   ///< access-transistor gate [F]
  double cell_drain_cap = 1.1e-15;  ///< pass-transistor drain on bitline [F]
  double sense_amp_energy_j = 8e-15;  ///< per column sensed
  double decoder_energy_per_bit = 3.5e-15;  ///< per address bit [J]
  double driver_energy_per_bit = 4e-15;     ///< output driver per bit [J]
  double cell_pitch = 2.4e-6;       ///< SRAM cell pitch [m] (per port growth
                                    ///  is handled separately)
  /// Wordline/bitline length grows with port count (wider cells).
  double port_pitch_factor = 0.6;
};

/// Geometry of one array structure.
struct ArrayGeometry {
  std::size_t rows = 64;
  std::size_t cols = 64;        ///< bits per row (data width read per access)
  std::size_t read_ports = 1;
  std::size_t write_ports = 1;
};

/// Energy of one read access.
util::Joules array_read_energy(const ArrayGeometry& g,
                               const ArrayTechnology& tech = {});

/// Energy of one write access (no sense amps; full bitline swing).
util::Joules array_write_energy(const ArrayGeometry& g,
                                const ArrayTechnology& tech = {});

/// Peak power if every port is used every cycle at `frequency`.
util::Watts array_peak_power(const ArrayGeometry& g, util::Hertz frequency,
                             const ArrayTechnology& tech = {});

/// Geometry of the EV7-like core's main array structures, for deriving
/// an energy table comparable to EnergyModel's calibrated one.
ArrayGeometry int_register_file_geometry();  ///< 80 regs x 64b, 8R/4W ports
ArrayGeometry fp_register_file_geometry();   ///< 72 regs x 64b, 4R/2W
ArrayGeometry icache_geometry();             ///< active 256x128 subarray
ArrayGeometry dcache_geometry();             ///< active subarray, 2 ports
ArrayGeometry bpred_geometry();              ///< 8K x 2-bit counters

}  // namespace hydra::power
