// Wattch-style per-block dynamic energy model.
//
// Each block has a peak dynamic power (all ports busy every cycle) at the
// nominal operating point and a clocked "base" fraction dissipated every
// cycle the clock tree runs (clock load, precharge, decoders). Activity
// counts from the core are normalised to utilisations with per-block
// maximum event rates and scaled by supply voltage squared; frequency
// enters through the number of cycles per second.
//
//   P_dyn(block) = [base + (1 - base) * util] * P_peak
//                  * (V/Vnom)^2 * (clocked_cycles / interval_cycles)
//                  * f / f_nom
//
// The absolute numbers are calibration constants chosen so that total
// chip power and the per-block power-density ranking reproduce the
// paper's setup (integer register file hottest; see DESIGN.md).
#pragma once

#include <array>

#include "arch/activity.h"
#include "floorplan/block.h"
#include "util/units.h"

namespace hydra::power {

/// Per-block dynamic-power coefficients.
struct BlockEnergySpec {
  double peak_watts = 0.0;       ///< at Vnom, f_nom, utilisation 1.0
  double base_fraction = 0.0;    ///< clocked idle fraction of peak
  double max_events_per_cycle = 1.0;  ///< normalisation for utilisation
};

class EnergyModel {
 public:
  /// Default calibration for the EV7-like floorplan at 1.3 V / 3 GHz.
  EnergyModel();

  const BlockEnergySpec& spec(floorplan::BlockId id) const {
    return specs_[static_cast<std::size_t>(id)];
  }
  BlockEnergySpec& spec_mutable(floorplan::BlockId id) {
    return specs_[static_cast<std::size_t>(id)];
  }

  util::Volts v_nominal() const { return util::Volts(v_nominal_); }
  util::Hertz f_nominal() const { return util::Hertz(f_nominal_); }

  /// Utilisation of `id` implied by `frame` (clamped to [0, 1]).
  double utilization(const arch::ActivityFrame& frame,
                     floorplan::BlockId id) const;

  /// Average dynamic power of block `id` over the interval captured
  /// by `frame`, at supply `voltage` and clock `frequency`.
  util::Watts dynamic_power(const arch::ActivityFrame& frame,
                            floorplan::BlockId id, util::Volts voltage,
                            util::Hertz frequency) const;

  /// Sum of peak powers (sanity/calibration aid).
  util::Watts total_peak_watts() const;

 private:
  std::array<BlockEnergySpec, floorplan::kNumBlocks> specs_{};
  double v_nominal_ = 1.3;
  double f_nominal_ = 3.0e9;
};

}  // namespace hydra::power
