// Combined dynamic + leakage power evaluation.
#pragma once

#include <vector>

#include "arch/activity.h"
#include "floorplan/floorplan.h"
#include "power/energy_model.h"
#include "power/leakage.h"
#include "util/units.h"

namespace hydra::power {

/// Evaluates per-block average power for a simulation interval, coupling
/// the activity-driven dynamic model with the temperature-driven leakage
/// model (leakage feeds back on temperature through the thermal solver).
class PowerModel {
 public:
  PowerModel(const floorplan::Floorplan& fp, EnergyModel energy);

  const EnergyModel& energy() const { return energy_; }
  EnergyModel& energy_mutable() { return energy_; }
  const LeakageModel& leakage() const { return leakage_; }

  /// Per-block power [W] (size kNumBlocks): dynamic power implied by the
  /// activity frame at (voltage, frequency), plus leakage evaluated at
  /// the given per-block temperatures [deg C] (first kNumBlocks entries of
  /// `celsius` are used, so a full thermal-node vector is accepted).
  /// Bulk vectors are raw doubles — the solver-kernel boundary.
  std::vector<double> block_power(const arch::ActivityFrame& frame,
                                  util::Volts voltage, util::Hertz frequency,
                                  const std::vector<double>& celsius) const;

  /// block_power into a caller-provided buffer (resized to kNumBlocks);
  /// the allocation-free hot-path variant.
  void block_power_into(const arch::ActivityFrame& frame, util::Volts voltage,
                        util::Hertz frequency,
                        const std::vector<double>& celsius,
                        std::vector<double>& watts) const;

  /// Total of block_power().
  util::Watts total_power(const arch::ActivityFrame& frame,
                          util::Volts voltage, util::Hertz frequency,
                          const std::vector<double>& celsius) const;

 private:
  EnergyModel energy_;
  LeakageModel leakage_;
};

}  // namespace hydra::power
