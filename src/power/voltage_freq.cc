#include "power/voltage_freq.h"

#include <cmath>
#include <stdexcept>

namespace hydra::power {

VoltageFrequencyCurve::VoltageFrequencyCurve(util::Volts v_nominal,
                                             util::Hertz f_nominal,
                                             util::Volts v_threshold,
                                             double alpha)
    : v_nominal_(v_nominal.value()),
      f_nominal_(f_nominal.value()),
      v_threshold_(v_threshold.value()),
      alpha_(alpha) {
  if (v_nominal <= v_threshold) {
    throw std::invalid_argument("nominal voltage must exceed Vth");
  }
  if (f_nominal.value() <= 0.0) {
    throw std::invalid_argument("nominal frequency must be positive");
  }
  norm_ = f_nominal_ /
          (std::pow(v_nominal_ - v_threshold_, alpha_) / v_nominal_);
}

util::Hertz VoltageFrequencyCurve::frequency(util::Volts v) const {
  if (v.value() <= v_threshold_) {
    throw std::invalid_argument("voltage at or below threshold");
  }
  return util::Hertz(norm_ * std::pow(v.value() - v_threshold_, alpha_) /
                     v.value());
}

DvsLadder::DvsLadder(const VoltageFrequencyCurve& curve, std::size_t steps,
                     double v_low_fraction) {
  if (steps < 2) {
    throw std::invalid_argument("a DVS ladder needs at least two points");
  }
  if (v_low_fraction <= 0.0 || v_low_fraction >= 1.0) {
    throw std::invalid_argument("v_low_fraction must be in (0, 1)");
  }
  const util::Volts v_hi = curve.v_nominal();
  const util::Volts v_lo = v_low_fraction * v_hi;
  points_.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    const util::Volts v = v_hi - frac * (v_hi - v_lo);
    points_.push_back({v, curve.frequency(v)});
  }
}

DvsLadder DvsLadder::continuous(const VoltageFrequencyCurve& curve,
                                double v_low_fraction) {
  return DvsLadder(curve, 64, v_low_fraction);
}

std::size_t DvsLadder::level_at_or_below(util::Volts v) const {
  // Points are sorted by descending voltage; pick the first (fastest)
  // whose voltage does not exceed the request.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].voltage.value() <= v.value() + 1e-12) return i;
  }
  return lowest_level();
}

}  // namespace hydra::power
